// latdiv-lint — C++ tokenizer.
//
// Produces identifier / number / string / char / punctuation tokens with
// line numbers, collects comments separately (suppression directives live
// in comments), and skips preprocessor directives (honoring backslash
// continuations) so macro definitions never confuse the parser.  `<` and
// `>` are always emitted as single tokens — never `>>` — so template
// argument lists can be balanced without maximal-munch headaches.
#pragma once

#include <string_view>

#include "lint_model.hpp"

namespace latdiv::lint {

/// Tokenize `text` into `out.tokens` / `out.comments`.
void lex(std::string_view text, FileModel& out);

/// Parse `lint:` suppression directives out of `out.comments` into
/// `out.sups` (canonical rule mapping included).
void collect_suppressions(FileModel& out);

}  // namespace latdiv::lint
