// latdiv-lint — lightweight structural parser.
//
// Walks the token stream of one file and recovers the structure the rules
// need: namespace/class scopes, member and (type-led) local variable
// declarations with their types, `using`/`typedef` aliases, function
// signatures with parameter types, and for-loops with the identifier of
// the iterated expression.  It is a heuristic recognizer, not a C++
// frontend: constructs it cannot classify are skipped conservatively so
// they can never produce findings (false negatives over false positives).
#pragma once

#include "lint_model.hpp"

namespace latdiv::lint {

/// Populate vars/funcs/loops/classes/aliases from `m.tokens`.
void parse(FileModel& m);

}  // namespace latdiv::lint
