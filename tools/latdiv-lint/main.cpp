// latdiv-lint — CLI.
//
//   latdiv-lint [--json FILE] [--list-rules] PATH...
//
// Analyzes every *.hpp/*.cpp under the given paths with the determinism /
// observer-purity / shard-safety rule catalogue (see DESIGN.md, "Static
// analysis & determinism contract").  Prints one `file:line: rule:
// message` per finding; exit 0 clean, 1 findings, 2 usage or I/O error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "lint_engine.hpp"
#include "lint_rules.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json FILE] [--list-rules] PATH...\n"
               "  PATH          file, or directory searched recursively for "
               "*.hpp/*.cpp\n"
               "  --json FILE   also write a machine-readable report\n"
               "  --list-rules  print the rule ids and exit\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const std::string& id : latdiv::lint::rule_ids()) {
        std::printf("%s\n", id.c_str());
      }
      return 0;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "latdiv-lint: unknown flag %s\n", argv[i]);
      return usage(argv[0]);
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) return usage(argv[0]);

  const latdiv::lint::LintResult result = latdiv::lint::run_lint(paths);
  std::fputs(latdiv::lint::to_text(result).c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "latdiv-lint: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << latdiv::lint::to_json(result);
  }
  if (!result.errors.empty()) return 2;
  if (!result.findings.empty()) {
    std::fprintf(stderr, "latdiv-lint: %zu finding(s) in %zu file(s)\n",
                 result.findings.size(), result.files_analyzed);
    return 1;
  }
  std::fprintf(stdout, "latdiv-lint: clean (%zu files, %zu suppressions used)\n",
               result.files_analyzed, result.suppressions_used);
  return 0;
}
