// latdiv-trace — summarise / validate the Chrome trace_event JSON files
// written by the observability layer (`latdiv-sweep --trace`, or any
// SimConfig with cfg.obs.trace set).
//
//   latdiv-trace summary FILE [--top N]   top-N slowest warp loads,
//                                         per-bank ACT/PRE breakdown,
//                                         write-drain totals
//   latdiv-trace validate FILE            strict trace_event schema check
//
// The summariser is deterministic: ties in the top-N ranking break on
// (start cycle, track id), so the same trace always prints the same
// report.
//
// Exit codes: 0 ok, 1 schema violation, 2 usage or I/O errors.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "exp/json.hpp"
#include "obs/event.hpp"

using latdiv::exp::JsonValue;

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: latdiv-trace summary FILE [--top N]\n"
               "       latdiv-trace validate FILE\n"
               "\n"
               "  summary    top-N slowest warp loads, per-bank ACT/PRE\n"
               "             breakdown and write-drain totals\n"
               "  validate   strict trace_event schema check (exit 1 on\n"
               "             the first violation)\n");
}

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

/// Integer view of a numeric member (0 when absent / non-numeric —
/// callers validate first where it matters).
std::uint64_t num_u64(const JsonValue& ev, const char* key) {
  const JsonValue* v = ev.find(key);
  if (v == nullptr || v->kind() != JsonValue::Kind::kNumber) return 0;
  return static_cast<std::uint64_t>(v->as_number());
}

const std::string* str_member(const JsonValue& ev, const char* key) {
  const JsonValue* v = ev.find(key);
  if (v == nullptr || v->kind() != JsonValue::Kind::kString) return nullptr;
  return &v->as_string();
}

// ---------------------------------------------------------------------------
// validate

int cmd_validate(const char* path) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "latdiv-trace: cannot read '%s'\n", path);
    return 2;
  }
  JsonValue doc;
  try {
    doc = JsonValue::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "latdiv-trace: '%s' is not JSON: %s\n", path,
                 e.what());
    return 1;
  }
  if (!doc.is_object()) {
    std::fprintf(stderr, "latdiv-trace: top level must be an object\n");
    return 1;
  }
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr,
                 "latdiv-trace: missing 'traceEvents' array member\n");
    return 1;
  }

  const auto fail = [](std::size_t i, const char* what) {
    std::fprintf(stderr, "latdiv-trace: event %zu: %s\n", i, what);
    return 1;
  };

  const JsonValue::Array& arr = events->as_array();
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const JsonValue& ev = arr[i];
    if (!ev.is_object()) return fail(i, "not an object");
    const std::string* name = str_member(ev, "name");
    if (name == nullptr || name->empty()) {
      return fail(i, "missing string 'name'");
    }
    const std::string* ph = str_member(ev, "ph");
    if (ph == nullptr || ph->size() != 1) {
      return fail(i, "missing one-char string 'ph'");
    }
    const char phase = (*ph)[0];
    if (phase != 'X' && phase != 'i' && phase != 'C' && phase != 'M') {
      return fail(i, "unsupported phase (want X, i, C or M)");
    }
    for (const char* key : {"pid", "tid"}) {
      const JsonValue* v = ev.find(key);
      if (v == nullptr || v->kind() != JsonValue::Kind::kNumber) {
        return fail(i, "missing numeric pid/tid");
      }
    }
    if (phase != 'M') {
      const JsonValue* ts = ev.find("ts");
      if (ts == nullptr || ts->kind() != JsonValue::Kind::kNumber) {
        return fail(i, "missing numeric 'ts'");
      }
    }
    if (phase == 'X') {
      const JsonValue* dur = ev.find("dur");
      if (dur == nullptr || dur->kind() != JsonValue::Kind::kNumber) {
        return fail(i, "complete event without numeric 'dur'");
      }
    }
    if (phase == 'C') {
      const JsonValue* a = ev.find("args");
      if (a == nullptr || !a->is_object() || a->as_object().empty()) {
        return fail(i, "counter event without args");
      }
    }
    if (phase == 'M') {
      if (*name != "process_name" && *name != "thread_name") {
        return fail(i, "unknown metadata event name");
      }
      const JsonValue* a = ev.find("args");
      if (a == nullptr || !a->is_object() ||
          str_member(*a, "name") == nullptr) {
        return fail(i, "metadata event without args.name");
      }
    }
  }
  std::printf("valid: %zu trace events\n", arr.size());
  return 0;
}

// ---------------------------------------------------------------------------
// summary

struct LoadSlice {
  std::uint64_t dur = 0;
  std::uint64_t ts = 0;
  std::uint64_t pid = 0;
  std::uint64_t tid = 0;
  std::uint64_t reqs = 0;
  std::uint64_t first = 0;
  std::uint64_t last = 0;
  std::uint64_t gap = 0;
};

struct BankCmds {
  std::uint64_t act = 0;
  std::uint64_t pre = 0;
};

int cmd_summary(const char* path, std::size_t top_n) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "latdiv-trace: cannot read '%s'\n", path);
    return 2;
  }
  JsonValue doc;
  try {
    doc = JsonValue::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "latdiv-trace: '%s' is not JSON: %s\n", path,
                 e.what());
    return 1;
  }
  const JsonValue* events = doc.is_object() ? doc.find("traceEvents") : nullptr;
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr,
                 "latdiv-trace: missing 'traceEvents' array member\n");
    return 1;
  }

  std::vector<LoadSlice> loads;
  // (pid, tid) -> track name from metadata events, emitted before first use.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::string> tracks;
  std::map<std::pair<std::uint64_t, std::uint64_t>, BankCmds> banks;
  std::uint64_t refreshes = 0;
  std::uint64_t drains = 0, drain_cycles = 0, drain_writes = 0;
  std::uint64_t enq = 0, cas = 0, data = 0, wr = 0, samples = 0;
  std::uint64_t end_ts = 0;

  for (const JsonValue& ev : events->as_array()) {
    if (!ev.is_object()) continue;
    const std::string* name = str_member(ev, "name");
    const std::string* ph = str_member(ev, "ph");
    if (name == nullptr || ph == nullptr || ph->empty()) continue;
    const char phase = (*ph)[0];
    const std::uint64_t pid = num_u64(ev, "pid");
    const std::uint64_t tid = num_u64(ev, "tid");
    const std::uint64_t ts = num_u64(ev, "ts");
    end_ts = std::max(end_ts, ts + num_u64(ev, "dur"));

    if (phase == 'M') {
      if (*name == "thread_name") {
        if (const JsonValue* a = ev.find("args")) {
          if (const std::string* n = str_member(*a, "name")) {
            tracks[{pid, tid}] = *n;
          }
        }
      }
      continue;
    }
    if (phase == 'X' && *name == "load") {
      LoadSlice s;
      s.dur = num_u64(ev, "dur");
      s.ts = ts;
      s.pid = pid;
      s.tid = tid;
      if (const JsonValue* a = ev.find("args")) {
        s.reqs = num_u64(*a, "reqs");
        s.first = num_u64(*a, "first");
        s.last = num_u64(*a, "last");
        s.gap = num_u64(*a, "gap");
      }
      loads.push_back(s);
    } else if (phase == 'X' && *name == "drain") {
      ++drains;
      drain_cycles += num_u64(ev, "dur");
      if (const JsonValue* a = ev.find("args")) {
        drain_writes += num_u64(*a, "writes");
      }
    } else if (*name == "ACT") {
      ++banks[{pid, tid}].act;
    } else if (*name == "PRE") {
      ++banks[{pid, tid}].pre;
    } else if (*name == "REF") {
      ++refreshes;
    } else if (*name == "enq") {
      ++enq;
    } else if (*name == "cas") {
      ++cas;
    } else if (*name == "data") {
      ++data;
    } else if (*name == "wr") {
      ++wr;
    } else if (phase == 'C') {
      ++samples;
    }
  }

  std::printf("trace: %s\n", path);
  std::printf("  span       : %" PRIu64 " cycles, %zu events\n", end_ts,
              events->as_array().size());
  std::printf("  requests   : %" PRIu64 " enqueued, %" PRIu64 " CAS, %" PRIu64
              " reads returned, %" PRIu64 " writes retired\n",
              enq, cas, data, wr);
  std::printf("  drains     : %" PRIu64 " episodes, %" PRIu64
              " cycles, %" PRIu64 " writes flushed\n",
              drains, drain_cycles, drain_writes);
  std::printf("  counters   : %" PRIu64 " sampled values\n", samples);

  // Top-N slowest warp loads (issue -> wakeup duration).
  std::sort(loads.begin(), loads.end(),
            [](const LoadSlice& a, const LoadSlice& b) {
              if (a.dur != b.dur) return a.dur > b.dur;
              if (a.ts != b.ts) return a.ts < b.ts;
              return a.tid < b.tid;
            });
  const std::size_t n = std::min(top_n, loads.size());
  std::printf("  slowest warp loads (%zu of %zu):\n", n, loads.size());
  for (std::size_t i = 0; i < n; ++i) {
    const LoadSlice& s = loads[i];
    const auto it = tracks.find({s.pid, s.tid});
    std::printf("    %-10s issue@%-10" PRIu64 " total %-8" PRIu64
                " first %-8" PRIu64 " gap %-8" PRIu64 " reqs %" PRIu64 "\n",
                it != tracks.end() ? it->second.c_str() : "?", s.ts, s.dur,
                s.first, s.gap, s.reqs);
  }

  // Per-bank DRAM command breakdown (channel = pid - kPidMcBase).
  std::printf("  per-bank ACT/PRE (%" PRIu64 " REF):\n", refreshes);
  for (const auto& [key, cmds] : banks) {
    const std::uint64_t ch = key.first >= latdiv::obs::kPidMcBase
                                 ? key.first - latdiv::obs::kPidMcBase
                                 : key.first;
    std::printf("    ch%" PRIu64 " bank%-3" PRIu64 " ACT %-8" PRIu64
                " PRE %" PRIu64 "\n",
                ch, key.second, cmds.act, cmds.pre);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage(stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "validate" && argc == 3) return cmd_validate(argv[2]);
  if (cmd == "summary") {
    std::size_t top_n = 10;
    const char* path = argv[2];
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
        top_n = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      } else {
        usage(stderr);
        return 2;
      }
    }
    return cmd_summary(path, top_n);
  }
  usage(stderr);
  return 2;
}
