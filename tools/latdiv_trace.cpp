// latdiv-trace — summarise / validate the Chrome trace_event JSON files
// written by the observability layer (`latdiv-sweep --trace`, or any
// SimConfig with cfg.obs.trace set), and render the attribution
// artifacts written by `latdiv-sweep --attrib`.
//
//   latdiv-trace summary FILE [--top N] [--attrib FILE]
//                                         top-N slowest warp loads,
//                                         per-bank ACT/PRE breakdown,
//                                         write-drain totals; with
//                                         --attrib, append the latency-
//                                         attribution section
//   latdiv-trace attrib FILE              latency-attribution section only
//   latdiv-trace validate FILE            strict trace_event schema check
//
// The summariser is deterministic (src/exp/trace_report.cpp): ties in
// the top-N ranking break on (start cycle, track id), so the same trace
// always prints the same report, and empty sections render "(none)".
//
// Exit codes: 0 ok, 1 schema violation, 2 usage or I/O errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/json.hpp"
#include "exp/trace_report.hpp"

using latdiv::exp::JsonValue;

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: latdiv-trace summary FILE [--top N] [--attrib FILE]\n"
               "       latdiv-trace attrib FILE\n"
               "       latdiv-trace validate FILE\n"
               "\n"
               "  summary    top-N slowest warp loads, per-bank ACT/PRE\n"
               "             breakdown and write-drain totals; --attrib\n"
               "             appends the latency-attribution section\n"
               "  attrib     latency-attribution section of an artifact\n"
               "             written by `latdiv-sweep --attrib`\n"
               "  validate   strict trace_event schema check (exit 1 on\n"
               "             the first violation)\n");
}

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

/// Parse `path` as JSON; exit code by reference (2 unreadable, 1 not
/// JSON) with the message already printed.
bool load_json(const char* path, JsonValue& doc, int& rc) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "latdiv-trace: cannot read '%s'\n", path);
    rc = 2;
    return false;
  }
  try {
    doc = JsonValue::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "latdiv-trace: '%s' is not JSON: %s\n", path,
                 e.what());
    rc = 1;
    return false;
  }
  return true;
}

const std::string* str_member(const JsonValue& ev, const char* key) {
  const JsonValue* v = ev.find(key);
  if (v == nullptr || v->kind() != JsonValue::Kind::kString) return nullptr;
  return &v->as_string();
}

// ---------------------------------------------------------------------------
// validate

int cmd_validate(const char* path) {
  int rc = 0;
  JsonValue doc;
  if (!load_json(path, doc, rc)) return rc;
  if (!doc.is_object()) {
    std::fprintf(stderr, "latdiv-trace: top level must be an object\n");
    return 1;
  }
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr,
                 "latdiv-trace: missing 'traceEvents' array member\n");
    return 1;
  }

  const auto fail = [](std::size_t i, const char* what) {
    std::fprintf(stderr, "latdiv-trace: event %zu: %s\n", i, what);
    return 1;
  };

  const JsonValue::Array& arr = events->as_array();
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const JsonValue& ev = arr[i];
    if (!ev.is_object()) return fail(i, "not an object");
    const std::string* name = str_member(ev, "name");
    if (name == nullptr || name->empty()) {
      return fail(i, "missing string 'name'");
    }
    const std::string* ph = str_member(ev, "ph");
    if (ph == nullptr || ph->size() != 1) {
      return fail(i, "missing one-char string 'ph'");
    }
    const char phase = (*ph)[0];
    if (phase != 'X' && phase != 'i' && phase != 'C' && phase != 'M') {
      return fail(i, "unsupported phase (want X, i, C or M)");
    }
    for (const char* key : {"pid", "tid"}) {
      const JsonValue* v = ev.find(key);
      if (v == nullptr || v->kind() != JsonValue::Kind::kNumber) {
        return fail(i, "missing numeric pid/tid");
      }
    }
    if (phase != 'M') {
      const JsonValue* ts = ev.find("ts");
      if (ts == nullptr || ts->kind() != JsonValue::Kind::kNumber) {
        return fail(i, "missing numeric 'ts'");
      }
    }
    if (phase == 'X') {
      const JsonValue* dur = ev.find("dur");
      if (dur == nullptr || dur->kind() != JsonValue::Kind::kNumber) {
        return fail(i, "complete event without numeric 'dur'");
      }
    }
    if (phase == 'C') {
      const JsonValue* a = ev.find("args");
      if (a == nullptr || !a->is_object() || a->as_object().empty()) {
        return fail(i, "counter event without args");
      }
    }
    if (phase == 'M') {
      if (*name != "process_name" && *name != "thread_name") {
        return fail(i, "unknown metadata event name");
      }
      const JsonValue* a = ev.find("args");
      if (a == nullptr || !a->is_object() ||
          str_member(*a, "name") == nullptr) {
        return fail(i, "metadata event without args.name");
      }
    }
  }
  std::printf("valid: %zu trace events\n", arr.size());
  return 0;
}

// ---------------------------------------------------------------------------
// summary / attrib

int cmd_attrib(const char* path) {
  int rc = 0;
  JsonValue doc;
  if (!load_json(path, doc, rc)) return rc;
  try {
    std::fputs(latdiv::exp::attrib_summary(doc, path).c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "latdiv-trace: '%s': %s\n", path, e.what());
    return 1;
  }
  return 0;
}

int cmd_summary(const char* path, std::size_t top_n,
                const char* attrib_path) {
  int rc = 0;
  JsonValue doc;
  if (!load_json(path, doc, rc)) return rc;
  try {
    std::fputs(latdiv::exp::trace_summary(doc, path, top_n).c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "latdiv-trace: '%s': %s\n", path, e.what());
    return 1;
  }
  if (attrib_path != nullptr) return cmd_attrib(attrib_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage(stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "validate" && argc == 3) return cmd_validate(argv[2]);
  if (cmd == "attrib" && argc == 3) return cmd_attrib(argv[2]);
  if (cmd == "summary") {
    std::size_t top_n = 10;
    const char* path = argv[2];
    const char* attrib_path = nullptr;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
        top_n = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--attrib") == 0 && i + 1 < argc) {
        attrib_path = argv[++i];
      } else {
        usage(stderr);
        return 2;
      }
    }
    return cmd_summary(path, top_n, attrib_path);
  }
  usage(stderr);
  return 2;
}
