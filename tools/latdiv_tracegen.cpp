// latdiv-tracegen — generate, inspect and replay binary instruction
// traces (workload/trace.hpp, format v2).
//
//   latdiv-tracegen list                          scenario catalogue
//   latdiv-tracegen generate SCENARIO --out FILE  capture a microkernel
//       [--sms N] [--warps N] [--records N] [--seed N] [--chunk N]
//   latdiv-tracegen inspect FILE                  header + geometry
//   latdiv-tracegen validate FILE                 full decode + CRC check
//   latdiv-tracegen stats FILE                    access-pattern breakdown
//   latdiv-tracegen replay FILE [--policy P] [--cycles N] [--in-memory]
//                                                 run the simulator on it
//
// generate pulls warps round-robin, but since scenario streams are
// strictly per-warp the captured trace is independent of pull order:
// the same (scenario, geometry, seed) always produces the same bytes —
// CI pins sha256s of the generated library.
//
// Exit codes: 0 ok, 1 invalid trace / failed run, 2 usage or I/O errors.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exp/executor.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "workload/trace.hpp"

using namespace latdiv;

namespace {

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: latdiv-tracegen list\n"
      "       latdiv-tracegen generate SCENARIO --out FILE [--sms N]\n"
      "                       [--warps N] [--records N] [--seed N] "
      "[--chunk N]\n"
      "       latdiv-tracegen inspect FILE\n"
      "       latdiv-tracegen validate FILE\n"
      "       latdiv-tracegen stats FILE\n"
      "       latdiv-tracegen replay FILE [--policy P] [--cycles N] "
      "[--warmup N]\n"
      "                       [--seed N] [--in-memory]\n"
      "\n"
      "  list      print the scenario catalogue\n"
      "  generate  capture a scenario microkernel to a v2 trace\n"
      "  inspect   decode and print the trace geometry summary\n"
      "  validate  full decode: header/index/chunk CRCs, every record\n"
      "  stats     access-pattern breakdown (kind mix, lanes, lines)\n"
      "  replay    drive a full simulation from the trace\n");
}

std::uint64_t parse_u64(const char* flag, const char* text) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "latdiv-tracegen: %s wants a number, got '%s'\n",
                 flag, text);
    std::exit(2);
  }
  return v;
}

const char* next_arg(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "latdiv-tracegen: %s needs a value\n", argv[i]);
    std::exit(2);
  }
  return argv[++i];
}

int cmd_list() {
  std::printf("scenarios:\n");
  for (const scenario::ScenarioSpec& s : scenario::scenario_catalog()) {
    std::printf("  %-18s %s\n", s.name.c_str(), s.summary.c_str());
  }
  return 0;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 3) {
    usage(stderr);
    return 2;
  }
  const std::string name = argv[2];
  std::string out;
  std::uint32_t sms = 4;
  std::uint32_t warps = 8;
  std::uint64_t records = 100'000;
  std::uint64_t seed = 1;
  std::uint32_t chunk = kTraceChunkRecords;
  for (int i = 3; i < argc; ++i) {
    const char* flag = argv[i];
    if (std::strcmp(flag, "--out") == 0) {
      out = next_arg(argc, argv, i);
    } else if (std::strcmp(flag, "--sms") == 0) {
      sms = static_cast<std::uint32_t>(
          parse_u64(flag, next_arg(argc, argv, i)));
    } else if (std::strcmp(flag, "--warps") == 0) {
      warps = static_cast<std::uint32_t>(
          parse_u64(flag, next_arg(argc, argv, i)));
    } else if (std::strcmp(flag, "--records") == 0) {
      records = parse_u64(flag, next_arg(argc, argv, i));
    } else if (std::strcmp(flag, "--seed") == 0) {
      seed = parse_u64(flag, next_arg(argc, argv, i));
    } else if (std::strcmp(flag, "--chunk") == 0) {
      chunk = static_cast<std::uint32_t>(
          parse_u64(flag, next_arg(argc, argv, i)));
    } else {
      std::fprintf(stderr, "latdiv-tracegen: unknown option '%s'\n", flag);
      return 2;
    }
  }
  if (out.empty() || sms == 0 || warps == 0 || records == 0) {
    std::fprintf(stderr,
                 "latdiv-tracegen: generate needs --out and a nonzero "
                 "geometry / record count\n");
    return 2;
  }
  try {
    const scenario::ScenarioSpec& spec = scenario::scenario_by_name(name);
    const auto source = scenario::make_scenario(spec, sms, warps, seed);
    TraceWriter writer(out, sms, warps, chunk);
    while (writer.records_written() < records) {
      for (std::uint32_t sm = 0; sm < sms; ++sm) {
        for (std::uint32_t w = 0; w < warps; ++w) {
          writer.record(static_cast<SmId>(sm), static_cast<WarpId>(w),
                        source->next(static_cast<SmId>(sm),
                                     static_cast<WarpId>(w)));
        }
      }
    }
    const std::uint64_t written = writer.records_written();
    writer.close();
    std::printf("wrote %" PRIu64 " records (%s, %ux%u warps, seed %" PRIu64
                ") to %s\n",
                written, spec.name.c_str(), sms, warps, seed, out.c_str());
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "latdiv-tracegen: %s\n", e.what());
    return 2;
  } catch (const TraceError& e) {
    std::fprintf(stderr, "latdiv-tracegen: %s\n", e.what());
    return 2;
  }
  return 0;
}

int scan_and(const char* path, bool full_stats) {
  TraceStats st;
  try {
    st = scan_trace(path);
  } catch (const TraceError& e) {
    std::fprintf(stderr, "latdiv-tracegen: %s\n", e.what());
    return 1;
  }
  std::printf("trace: %s\n", path);
  std::printf("  version      : v%u%s\n", st.version,
              st.version == 1 ? " (legacy host-order, in-memory only)" : "");
  std::printf("  geometry     : %u SMs x %u warps\n", st.sms,
              st.warps_per_sm);
  std::printf("  records      : %" PRIu64 " total, %" PRIu64
              " active warps (min %" PRIu64 " / max %" PRIu64
              " per warp)\n",
              st.total_records, st.active_warps, st.min_warp_records,
              st.max_warp_records);
  if (st.version >= 2) {
    std::printf("  chunks       : %" PRIu64 " of <= %u records\n", st.chunks,
                st.chunk_records);
  }
  std::printf("  file bytes   : %" PRIu64 " (%" PRIu64 " record payload)\n",
              st.file_bytes, st.payload_bytes);
  if (full_stats) {
    std::printf("  kind mix     : %" PRIu64 " compute / %" PRIu64
                " load / %" PRIu64 " store (%.1f%% memory)\n",
                st.computes, st.loads, st.stores, 100.0 * st.mem_frac());
    std::printf("  mem lanes    : %" PRIu64 " total, %.1f per memory instr\n",
                st.mem_lanes, st.lanes_per_mem());
    std::printf("  distinct 128B lines: %" PRIu64 "\n", st.distinct_lines);
    std::printf("  mean compute latency: %.1f cycles\n",
                st.mean_compute_latency);
  }
  return 0;
}

int cmd_validate(const char* path) {
  TraceStats st;
  try {
    st = scan_trace(path);
  } catch (const TraceError& e) {
    std::fprintf(stderr, "latdiv-tracegen: %s\n", e.what());
    return 1;
  }
  std::printf("valid: v%u trace, %" PRIu64 " records, %u x %u warps\n",
              st.version, st.total_records, st.sms, st.warps_per_sm);
  return 0;
}

SchedulerKind parse_policy(const char* name) {
  static constexpr SchedulerKind kAll[] = {
      SchedulerKind::kFcfs,   SchedulerKind::kFrFcfs,
      SchedulerKind::kGmc,    SchedulerKind::kWafcfs,
      SchedulerKind::kSbwas,  SchedulerKind::kWg,
      SchedulerKind::kWgM,    SchedulerKind::kWgBw,
      SchedulerKind::kWgW,    SchedulerKind::kWgShared,
      SchedulerKind::kZld};
  for (const SchedulerKind kind : kAll) {
    if (std::strcmp(name, to_string(kind)) == 0) return kind;
  }
  std::fprintf(stderr, "latdiv-tracegen: unknown policy '%s' (want", name);
  for (const SchedulerKind kind : kAll) {
    std::fprintf(stderr, " %s", to_string(kind));
  }
  std::fprintf(stderr, ")\n");
  std::exit(2);
}

int cmd_replay(int argc, char** argv) {
  if (argc < 3) {
    usage(stderr);
    return 2;
  }
  const char* path = argv[2];
  SchedulerKind policy = SchedulerKind::kGmc;
  Cycle cycles = 50'000;
  Cycle warmup = 5'000;
  std::uint64_t seed = 1;
  bool in_memory = false;
  for (int i = 3; i < argc; ++i) {
    const char* flag = argv[i];
    if (std::strcmp(flag, "--policy") == 0) {
      policy = parse_policy(next_arg(argc, argv, i));
    } else if (std::strcmp(flag, "--cycles") == 0) {
      cycles = parse_u64(flag, next_arg(argc, argv, i));
    } else if (std::strcmp(flag, "--warmup") == 0) {
      warmup = parse_u64(flag, next_arg(argc, argv, i));
    } else if (std::strcmp(flag, "--seed") == 0) {
      seed = parse_u64(flag, next_arg(argc, argv, i));
    } else if (std::strcmp(flag, "--in-memory") == 0) {
      in_memory = true;  // documented escape hatch; streaming is default
    } else {
      std::fprintf(stderr, "latdiv-tracegen: unknown option '%s'\n", flag);
      return 2;
    }
  }
  try {
    // Probe the header/index for the geometry; the simulator then opens
    // its own streaming replayer.
    std::uint32_t sms = 0;
    std::uint32_t warps = 0;
    {
      TraceReplayer probe(path, ReplayMode::kStreaming);
      sms = probe.sms();
      warps = probe.warps_per_sm();
      if (in_memory) {
        // Exercise the in-memory decode path up front so corruption is
        // reported here rather than mid-simulation.
        TraceReplayer full(path, ReplayMode::kInMemory);
      }
    }
    SimConfig cfg;
    cfg.num_sms = sms;
    cfg.sm.warps = warps;
    cfg.icnt.sms = sms;
    cfg.scheduler = policy;
    cfg.seed = seed;
    cfg.max_cycles = cycles;
    cfg.warmup_cycles = warmup < cycles ? warmup : cycles / 10;
    cfg.replay_trace_path = path;
    cfg.workload.name = "trace";
    const RunResult r = Simulator(cfg).run();
    std::printf("replayed %s under %s for %" PRIu64 " cycles\n", path,
                to_string(policy), cycles);
    for (const auto& [key, value] : exp::metrics_from(r)) {
      std::printf("  %-24s %.6g\n", key.c_str(), value);
    }
  } catch (const TraceError& e) {
    std::fprintf(stderr, "latdiv-tracegen: %s\n", e.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "help") {
    usage(stdout);
    return 0;
  }
  if (cmd == "list") return cmd_list();
  if (cmd == "generate") return cmd_generate(argc, argv);
  if (cmd == "inspect" && argc == 3) return scan_and(argv[2], false);
  if (cmd == "validate" && argc == 3) return cmd_validate(argv[2]);
  if (cmd == "stats" && argc == 3) return scan_and(argv[2], true);
  if (cmd == "replay") return cmd_replay(argc, argv);
  usage(stderr);
  return 2;
}
