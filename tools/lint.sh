#!/usr/bin/env bash
# Determinism lint for latdiv.
#
# The simulator must be bit-reproducible: two runs with the same SimConfig
# and seed must produce identical RunResults (the test suite asserts this,
# but only for the configurations it happens to run).  This lint bans the
# source-level constructs that break reproducibility:
#
#   1. Wall-clock time anywhere in src/ (std::chrono clocks, time(),
#      gettimeofday, clock_gettime, clock()).  Measurement-only uses
#      whose values never reach simulation state or deterministic
#      artifacts (the experiment harness timing sweep points) may be
#      annotated with `// lint: wall-clock-ok` on the same line.
#   2. Non-seeded / global randomness (rand, srand, random_device) —
#      all randomness must flow through common/rng.hpp's seeded Rng.
#   3. Iteration over address-ordered (unordered) containers in the
#      scheduling paths (src/mc, src/core): iteration order of an
#      unordered_map depends on pointer values and hashing salt, so a
#      scheduler that picks "the first" element of one is nondeterministic
#      across platforms.  Loops that only aggregate (sums, counts) are
#      order-independent and may be annotated with
#      `// lint: order-independent` on the loop line or the line above.
#
# Exit status: 0 clean, 1 findings (each printed as file:line: message).
set -u

cd "$(dirname "$0")/.."
SRC=src
status=0

fail() { # one finding per argument line
  status=1
  printf '%s\n' "$1"
}

note_allowed() { :; }

# --- 1. wall-clock time -------------------------------------------------
if out=$(grep -rnE 'std::chrono::(system_clock|steady_clock|high_resolution_clock)|[^a-zA-Z_](gettimeofday|clock_gettime)\s*\(|[^a-zA-Z_.]time\s*\(\s*(NULL|nullptr|0)?\s*\)' \
    --include='*.hpp' --include='*.cpp' "$SRC" | grep -v 'lint: wall-clock-ok'); then
  fail "$(echo "$out" | sed 's/$/  [banned: wall-clock time in the simulator]/')"
fi

# --- 2. unseeded randomness --------------------------------------------
if out=$(grep -rnE '[^a-zA-Z_](rand|srand)\s*\(|std::random_device' \
    --include='*.hpp' --include='*.cpp' "$SRC"); then
  fail "$(echo "$out" | sed 's/$/  [banned: use the seeded Rng in common\/rng.hpp]/')"
fi

# --- 3. unordered-container iteration in scheduling paths ---------------
# Collect every variable declared with an unordered container type across
# the scheduling paths (members live in headers, loops in .cpp files, so
# names must be pooled directory-wide), then flag range-for loops over any
# of those names unless annotated order-independent.
sched_files=$(find "$SRC/mc" "$SRC/core" \( -name '*.hpp' -o -name '*.cpp' \) | sort)
names=$(grep -hoE 'unordered_(map|set)<[^;]*>\s+[A-Za-z_][A-Za-z0-9_]*' $sched_files \
          | sed -E 's/.*>[[:space:]]+([A-Za-z_][A-Za-z0-9_]*)$/\1/' | sort -u)
for name in $names; do
  for f in $sched_files; do
    # Range-for over the container (with or without qualification).
    matches=$(grep -nE "for\s*\(.*:\s*[A-Za-z_>.()-]*\b${name}\b\s*\)" "$f" || true)
    [ -z "$matches" ] && continue
    while IFS= read -r m; do
      line=${m%%:*}
      prev=$((line - 1))
      if sed -n "${line}p;${prev}p" "$f" | grep -q 'lint: order-independent'; then
        note_allowed
      else
        fail "$f:$line: range-for over unordered container '$name' in a scheduling path  [annotate '// lint: order-independent' if the loop only aggregates]"
      fi
    done <<< "$matches"
  done
done

if [ "$status" -eq 0 ]; then
  echo "lint.sh: clean"
fi
exit "$status"
