// latdiv-report — cross-run regression report for any two JSON artifacts
// produced by this repo (sweep artifacts, attribution JSON from
// `latdiv-sweep --attrib`, BENCH_throughput.json).
//
//   latdiv-report CURRENT.json BASELINE.json [options]
//
//   --out-md FILE     write the markdown report (default: stdout)
//   --out-json FILE   also write the verdict table as JSON
//   --default-tol R   relative tolerance for 'pass' (default 0.02)
//   --abs-tol A       absolute tolerance floor (default 1e-9)
//   --ignore SUBSTR   skip metrics whose path contains SUBSTR (repeatable;
//                     use for wall-clock fields)
//   --gate            exit 1 when any compared metric regressed
//
// Both documents are flattened into path -> number tables (objects join
// with '.', array elements key on their "id"/"workload" member when
// present so point reordering never misaligns a comparison).  A metric
// passes when |current − baseline| <= max(abs_tol, rel_tol · |baseline|);
// metrics present on only one side are listed but never gate.  Without
// --gate the tool always exits 0 (report-only, for upload-style CI
// steps); I/O or parse problems exit 2.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/json.hpp"

using latdiv::exp::JsonValue;

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: latdiv-report CURRENT.json BASELINE.json [options]\n"
               "\n"
               "  --out-md FILE     write the markdown report "
               "(default: stdout)\n"
               "  --out-json FILE   also write the verdict table as JSON\n"
               "  --default-tol R   relative tolerance (default 0.02)\n"
               "  --abs-tol A       absolute tolerance floor "
               "(default 1e-9)\n"
               "  --ignore SUBSTR   skip metric paths containing SUBSTR "
               "(repeatable)\n"
               "  --gate            exit 1 when any metric regressed\n");
}

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

struct Metric {
  std::string path;
  double value = 0.0;
};

/// Stable key for an array element: its "id" (sweep points) or
/// "workload"[/"scheduler"] (bench rows) member when present, else the
/// positional index — so reordered artifacts still line up.
std::string element_key(const JsonValue& v, std::size_t index) {
  if (v.is_object()) {
    if (const JsonValue* id = v.find("id")) {
      if (id->kind() == JsonValue::Kind::kString) return id->as_string();
    }
    if (const JsonValue* w = v.find("workload")) {
      if (w->kind() == JsonValue::Kind::kString) {
        std::string key = w->as_string();
        if (const JsonValue* s = v.find("scheduler")) {
          if (s->kind() == JsonValue::Kind::kString) {
            key += "/" + s->as_string();
          }
        }
        return key;
      }
    }
  }
  return std::to_string(index);
}

void flatten(const JsonValue& v, const std::string& path,
             std::vector<Metric>& out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNumber:
      out.push_back({path, v.as_number()});
      return;
    case JsonValue::Kind::kBool:
      out.push_back({path, v.as_bool() ? 1.0 : 0.0});
      return;
    case JsonValue::Kind::kObject:
      for (const auto& [key, member] : v.as_object()) {
        flatten(member, path.empty() ? key : path + "." + key, out);
      }
      return;
    case JsonValue::Kind::kArray: {
      const JsonValue::Array& arr = v.as_array();
      for (std::size_t i = 0; i < arr.size(); ++i) {
        flatten(arr[i], path + "[" + element_key(arr[i], i) + "]", out);
      }
      return;
    }
    case JsonValue::Kind::kNull:
    case JsonValue::Kind::kString:
      return;  // strings/nulls carry no comparable value
  }
}

const Metric* find_metric(const std::vector<Metric>& list,
                          const std::string& path) {
  for (const Metric& m : list) {
    if (m.path == path) return &m;
  }
  return nullptr;
}

struct Row {
  std::string path;
  double current = 0.0;
  double baseline = 0.0;
  double delta = 0.0;
  double rel = 0.0;  ///< delta / |baseline| (0 when baseline is 0)
  bool pass = true;
};

struct Report {
  std::vector<Row> rows;
  std::vector<std::string> only_current;
  std::vector<std::string> only_baseline;
  std::size_t ignored = 0;
  std::size_t failed = 0;
};

std::string fmt_num(double v) {
  // Integers print exactly; everything else with 6 significant digits.
  if (std::fabs(v) < 1e15 && v == std::floor(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string to_markdown(const Report& r, const char* cur_path,
                        const char* base_path, double rel_tol,
                        double abs_tol) {
  std::string out;
  out += "# latdiv regression report\n\n";
  out += "- current: `" + std::string(cur_path) + "`\n";
  out += "- baseline: `" + std::string(base_path) + "`\n";
  char tol[96];
  std::snprintf(tol, sizeof tol,
                "- tolerance: rel %.4g, abs %.4g\n- compared: %zu, "
                "failed: %zu, ignored: %zu\n\n",
                rel_tol, abs_tol, r.rows.size(), r.failed, r.ignored);
  out += tol;

  out += "| metric | current | baseline | delta | rel | verdict |\n";
  out += "|---|---:|---:|---:|---:|---|\n";
  for (const Row& row : r.rows) {
    char rel[32];
    std::snprintf(rel, sizeof rel, "%+.2f%%", row.rel * 100.0);
    out += "| `" + row.path + "` | " + fmt_num(row.current) + " | " +
           fmt_num(row.baseline) + " | " + fmt_num(row.delta) + " | " +
           rel + " | " + (row.pass ? "pass" : "**FAIL**") + " |\n";
  }
  if (r.rows.empty()) out += "| (none) | | | | | |\n";

  const auto list_section = [&out](const char* title,
                                   const std::vector<std::string>& paths) {
    if (paths.empty()) return;
    out += "\n";
    out += title;
    out += "\n\n";
    for (const std::string& p : paths) out += "- `" + p + "`\n";
  };
  list_section("## only in current", r.only_current);
  list_section("## only in baseline", r.only_baseline);
  return out;
}

std::string to_json(const Report& r, const char* cur_path,
                    const char* base_path, double rel_tol, double abs_tol) {
  JsonValue doc{JsonValue::Object{}};
  doc.set("current", cur_path);
  doc.set("baseline", base_path);
  doc.set("rel_tol", rel_tol);
  doc.set("abs_tol", abs_tol);
  doc.set("compared", static_cast<double>(r.rows.size()));
  doc.set("failed", static_cast<double>(r.failed));
  doc.set("ignored", static_cast<double>(r.ignored));
  JsonValue rows{JsonValue::Array{}};
  for (const Row& row : r.rows) {
    JsonValue o{JsonValue::Object{}};
    o.set("metric", row.path);
    o.set("current", row.current);
    o.set("baseline", row.baseline);
    o.set("delta", row.delta);
    o.set("rel", row.rel);
    o.set("pass", row.pass);
    rows.push_back(std::move(o));
  }
  doc.set("rows", std::move(rows));
  JsonValue only_cur{JsonValue::Array{}};
  for (const std::string& p : r.only_current) only_cur.push_back(p);
  doc.set("only_current", std::move(only_cur));
  JsonValue only_base{JsonValue::Array{}};
  for (const std::string& p : r.only_baseline) only_base.push_back(p);
  doc.set("only_baseline", std::move(only_base));
  return doc.dump();
}

bool write_file(const char* path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  const char* cur_path = nullptr;
  const char* base_path = nullptr;
  const char* out_md = nullptr;
  const char* out_json = nullptr;
  double rel_tol = 0.02;
  double abs_tol = 1e-9;
  bool gate = false;
  std::vector<std::string> ignores;

  for (int i = 1; i < argc; ++i) {
    const char* flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "latdiv-report: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(flag, "--out-md") == 0) {
      out_md = value();
    } else if (std::strcmp(flag, "--out-json") == 0) {
      out_json = value();
    } else if (std::strcmp(flag, "--default-tol") == 0) {
      rel_tol = std::strtod(value(), nullptr);
    } else if (std::strcmp(flag, "--abs-tol") == 0) {
      abs_tol = std::strtod(value(), nullptr);
    } else if (std::strcmp(flag, "--ignore") == 0) {
      ignores.emplace_back(value());
    } else if (std::strcmp(flag, "--gate") == 0) {
      gate = true;
    } else if (std::strcmp(flag, "--help") == 0) {
      usage(stdout);
      return 0;
    } else if (flag[0] == '-') {
      std::fprintf(stderr, "latdiv-report: unknown option '%s'\n", flag);
      usage(stderr);
      return 2;
    } else if (cur_path == nullptr) {
      cur_path = flag;
    } else if (base_path == nullptr) {
      base_path = flag;
    } else {
      usage(stderr);
      return 2;
    }
  }
  if (cur_path == nullptr || base_path == nullptr) {
    usage(stderr);
    return 2;
  }

  std::vector<Metric> current, baseline;
  for (const auto& [path, list] :
       {std::pair{cur_path, &current}, std::pair{base_path, &baseline}}) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "latdiv-report: cannot read '%s'\n", path);
      return 2;
    }
    JsonValue doc;
    try {
      doc = JsonValue::parse(text);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "latdiv-report: bad JSON '%s': %s\n", path,
                   e.what());
      return 2;
    }
    flatten(doc, "", *list);
  }

  const auto ignored = [&ignores](const std::string& path) {
    for (const std::string& s : ignores) {
      if (path.find(s) != std::string::npos) return true;
    }
    return false;
  };

  Report report;
  for (const Metric& cur : current) {
    if (ignored(cur.path)) {
      ++report.ignored;
      continue;
    }
    const Metric* base = find_metric(baseline, cur.path);
    if (base == nullptr) {
      report.only_current.push_back(cur.path);
      continue;
    }
    Row row;
    row.path = cur.path;
    row.current = cur.value;
    row.baseline = base->value;
    row.delta = cur.value - base->value;
    row.rel = base->value != 0.0 ? row.delta / std::fabs(base->value) : 0.0;
    row.pass = std::fabs(row.delta) <=
               std::max(abs_tol, rel_tol * std::fabs(base->value));
    if (!row.pass) ++report.failed;
    report.rows.push_back(std::move(row));
  }
  for (const Metric& base : baseline) {
    if (ignored(base.path)) continue;
    if (find_metric(current, base.path) == nullptr) {
      report.only_baseline.push_back(base.path);
    }
  }

  const std::string md =
      to_markdown(report, cur_path, base_path, rel_tol, abs_tol);
  if (out_md != nullptr) {
    if (!write_file(out_md, md)) {
      std::fprintf(stderr, "latdiv-report: cannot write '%s'\n", out_md);
      return 2;
    }
  } else {
    std::fputs(md.c_str(), stdout);
  }
  if (out_json != nullptr &&
      !write_file(out_json,
                  to_json(report, cur_path, base_path, rel_tol, abs_tol))) {
    std::fprintf(stderr, "latdiv-report: cannot write '%s'\n", out_json);
    return 2;
  }
  std::fprintf(stderr, "latdiv-report: %zu compared, %zu failed, %zu "
               "ignored\n",
               report.rows.size(), report.failed, report.ignored);
  return gate && report.failed > 0 ? 1 : 0;
}
