// latdiv-ckpt — snapshot inspection and validation.
//
//   latdiv-ckpt inspect FILE      print the header and section table
//   latdiv-ckpt validate FILE...  CRC-verify one or more snapshots
//
// Both commands walk the full section framing and verify every CRC (the
// header's and each section's), so a clean `inspect` doubles as a
// validity proof; `validate` is the quiet batch form for CI.
//
// Exit codes: 0 all files valid, 1 any file invalid, 2 usage errors.
#include <cstdio>
#include <cstring>
#include <string>

#include "ckpt/error.hpp"
#include "ckpt/snapshot.hpp"

using namespace latdiv;

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: latdiv-ckpt inspect FILE\n"
               "       latdiv-ckpt validate FILE [FILE...]\n");
}

int cmd_inspect(const char* path) {
  ckpt::SnapshotInfo info;
  try {
    info = ckpt::inspect_snapshot_file(path);
  } catch (const ckpt::CkptError& e) {
    std::fprintf(stderr, "latdiv-ckpt: %s: %s\n", path, e.what());
    return 1;
  }
  std::printf("snapshot:    %s\n", path);
  std::printf("version:     %u\n", info.version);
  std::printf("fingerprint: 0x%08x\n", info.fingerprint);
  std::printf("cycle:       %llu\n",
              static_cast<unsigned long long>(info.cycle));
  std::printf("size:        %llu bytes\n",
              static_cast<unsigned long long>(info.file_bytes));
  std::printf("sections:\n");
  for (const ckpt::SnapshotSectionInfo& s : info.sections) {
    std::printf("  %-4s %12llu bytes\n", s.tag.c_str(),
                static_cast<unsigned long long>(s.payload_bytes));
  }
  std::printf("all CRCs ok\n");
  return 0;
}

int cmd_validate(int argc, char** argv) {
  int rc = 0;
  for (int i = 2; i < argc; ++i) {
    try {
      const ckpt::SnapshotInfo info = ckpt::inspect_snapshot_file(argv[i]);
      std::printf("%s: ok (cycle %llu, %zu sections)\n", argv[i],
                  static_cast<unsigned long long>(info.cycle),
                  info.sections.size());
    } catch (const ckpt::CkptError& e) {
      std::printf("%s: INVALID: %s\n", argv[i], e.what());
      rc = 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "help") {
    usage(stdout);
    return 0;
  }
  if (cmd == "inspect") {
    if (argc != 3) {
      usage(stderr);
      return 2;
    }
    return cmd_inspect(argv[2]);
  }
  if (cmd == "validate") {
    if (argc < 3) {
      usage(stderr);
      return 2;
    }
    return cmd_validate(argc, argv);
  }
  std::fprintf(stderr, "latdiv-ckpt: unknown command '%s'\n", cmd.c_str());
  usage(stderr);
  return 2;
}
