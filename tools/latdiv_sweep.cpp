// latdiv-sweep — unified experiment sweep CLI.
//
//   latdiv-sweep <manifest> [options]   run a named figure sweep
//   latdiv-sweep check CUR GOLD [...]   compare two artifacts
//   latdiv-sweep list                   list the known manifests
//
// Examples:
//   latdiv-sweep fig8 --quick --jobs $(nproc) --out BENCH_fig8.json
//   latdiv-sweep fig8 --filter bfs/ --seeds 3 --csv fig8.csv
//   latdiv-sweep fig8 --quick --check bench/golden/fig8_quick.json
//   latdiv-sweep check fig8_quick.json bench/golden/fig8_quick.json
//
// Exit codes: 0 success, 1 failed points or golden regression, 2 usage or
// I/O errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/driver.hpp"

using namespace latdiv;
using namespace latdiv::exp;

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: latdiv-sweep <manifest> [options]\n"
               "       latdiv-sweep check CURRENT.json GOLDEN.json "
               "[--default-tol R] [--tol METRIC=R]\n"
               "       latdiv-sweep list\n"
               "\n"
               "run options:\n"
               "  --cycles N        simulated DRAM cycles per point "
               "(default 50000)\n"
               "  --warmup N        warmup cycles excluded from IPC "
               "(default 5000)\n"
               "  --seed N          base workload seed (default 1)\n"
               "  --seeds N         independent trials per cell "
               "(default 1)\n"
               "  --quick           quarter-length smoke run\n"
               "  --filter S        keep only points whose id contains S\n"
               "  --jobs N          executor threads (default 1)\n"
               "  --shards N        channel shards per simulated point "
               "(default $LATDIV_SHARDS or 1;\n"
               "                    artifact bytes are identical at any "
               "value)\n"
               "  --out FILE        write the JSON artifact\n"
               "  --csv FILE        write the CSV artifact\n"
               "  --timings         include per-point wall_ms in the JSON "
               "(non-deterministic)\n"
               "  --profile         per-phase wall-clock, simulated "
               "Mcycles/s and peak RSS on stderr\n"
               "  --trace DIR       write per-point Chrome trace_event JSON "
               "into DIR (Perfetto-loadable)\n"
               "  --timeseries DIR  write per-point sampled time-series CSV "
               "into DIR\n"
               "  --attrib DIR      run the latency-attribution profiler and "
               "write per-point\n"
               "                    attribution JSON into DIR (adds attrib.* "
               "point metrics)\n"
               "  --sample-interval N\n"
               "                    time-series sampling epoch in DRAM "
               "cycles (default 500)\n"
               "  --snapshot DIR    write each point's final state to "
               "DIR/<id>.snap (latdiv-ckpt inspects)\n"
               "  --resume DIR      restore each point from DIR/<id>.snap "
               "before running\n"
               "  --sampling[=D,W,P]\n"
               "                    SMARTS interval sampling: D detailed / "
               "W warm-up cycles every P-cycle\n"
               "                    period (default 8000,4000,120000); "
               "reports estimate metrics\n"
               "  --no-fast-forward\n"
               "                    disable idle-cycle fast-forward (results "
               "are byte-identical either way)\n"
               "  --quiet           no per-point progress on stderr\n"
               "  --check FILE      golden-check the artifact against FILE\n"
               "  --default-tol R   relative tolerance for --check "
               "(default 0.02)\n"
               "  --tol METRIC=R    per-metric relative tolerance "
               "(repeatable)\n");
}

std::uint64_t parse_u64(const char* flag, const char* text) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "latdiv-sweep: %s wants a number, got '%s'\n", flag,
                 text);
    std::exit(2);
  }
  return v;
}

/// Shard count from --shards or the LATDIV_SHARDS env var; 0 (a silent
/// serial fallback waiting to happen) is rejected.
std::uint32_t parse_shards(const char* origin, const char* text) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || v == 0 || v > 4096) {
    std::fprintf(stderr,
                 "latdiv-sweep: %s wants a shard count >= 1, got '%s'\n",
                 origin, text);
    std::exit(2);
  }
  return static_cast<std::uint32_t>(v);
}

/// "D,W,P" -> SamplingConfig{detail, warm, period}; bare --sampling
/// keeps the defaults.
latdiv::ckpt::SamplingConfig parse_sampling(const char* text) {
  latdiv::ckpt::SamplingConfig sc;
  if (text == nullptr || *text == '\0') return sc;
  char* end = nullptr;
  sc.detail_cycles = std::strtoull(text, &end, 10);
  if (end == text || *end != ',') {
    std::fprintf(stderr, "latdiv-sweep: --sampling wants D,W,P, got '%s'\n",
                 text);
    std::exit(2);
  }
  const char* p = end + 1;
  sc.warm_cycles = std::strtoull(p, &end, 10);
  if (end == p || *end != ',') {
    std::fprintf(stderr, "latdiv-sweep: --sampling wants D,W,P, got '%s'\n",
                 text);
    std::exit(2);
  }
  p = end + 1;
  sc.period_cycles = std::strtoull(p, &end, 10);
  if (end == p || *end != '\0' || sc.detail_cycles == 0 ||
      sc.period_cycles < sc.warm_cycles + sc.detail_cycles) {
    std::fprintf(stderr,
                 "latdiv-sweep: --sampling needs D > 0 and P >= W + D, "
                 "got '%s'\n",
                 text);
    std::exit(2);
  }
  return sc;
}

const char* next_arg(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "latdiv-sweep: %s needs a value\n", argv[i]);
    std::exit(2);
  }
  return argv[++i];
}

bool parse_tolerance_flags(int argc, char** argv, int& i,
                           GoldenOptions& golden) {
  if (std::strcmp(argv[i], "--default-tol") == 0) {
    golden.default_tol.rel =
        std::strtod(next_arg(argc, argv, i), nullptr);
    return true;
  }
  if (std::strcmp(argv[i], "--tol") == 0) {
    const std::string spec = next_arg(argc, argv, i);
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "latdiv-sweep: --tol wants METRIC=REL, got '%s'\n",
                   spec.c_str());
      std::exit(2);
    }
    GoldenTolerance tol;
    tol.rel = std::strtod(spec.c_str() + eq + 1, nullptr);
    golden.per_metric[spec.substr(0, eq)] = tol;
    return true;
  }
  return false;
}

int cmd_list() {
  std::printf("manifests:\n");
  for (const std::string& name : manifest_names()) {
    std::printf("  %-8s %s\n", name.c_str(),
                manifest_summary(name).c_str());
  }
  return 0;
}

bool load_artifact(const char* path, Artifact& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "latdiv-sweep: cannot read '%s'\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    out = artifact_from_json(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "latdiv-sweep: bad artifact '%s': %s\n", path,
                 e.what());
    return false;
  }
  return true;
}

int cmd_check(int argc, char** argv) {
  GoldenOptions golden;
  const char* current_path = nullptr;
  const char* golden_path = nullptr;
  for (int i = 2; i < argc; ++i) {
    if (parse_tolerance_flags(argc, argv, i, golden)) continue;
    if (argv[i][0] == '-') {
      std::fprintf(stderr, "latdiv-sweep: unknown check option '%s'\n",
                   argv[i]);
      return 2;
    }
    if (current_path == nullptr) current_path = argv[i];
    else if (golden_path == nullptr) golden_path = argv[i];
    else {
      usage(stderr);
      return 2;
    }
  }
  if (current_path == nullptr || golden_path == nullptr) {
    usage(stderr);
    return 2;
  }
  Artifact current, baseline;
  if (!load_artifact(current_path, current) ||
      !load_artifact(golden_path, baseline)) {
    return 2;
  }
  return print_golden_report(check_golden(current, baseline, golden), stdout)
             ? 0
             : 1;
}

int cmd_run(const std::string& manifest, int argc, char** argv) {
  SweepRunArgs args;
  if (const char* env = std::getenv("LATDIV_SHARDS")) {
    args.shards = parse_shards("LATDIV_SHARDS", env);
  }
  for (int i = 2; i < argc; ++i) {
    const char* flag = argv[i];
    if (std::strcmp(flag, "--cycles") == 0) {
      args.opts.cycles = parse_u64(flag, next_arg(argc, argv, i));
    } else if (std::strcmp(flag, "--warmup") == 0) {
      args.opts.warmup = parse_u64(flag, next_arg(argc, argv, i));
    } else if (std::strcmp(flag, "--seed") == 0) {
      args.opts.seed = parse_u64(flag, next_arg(argc, argv, i));
    } else if (std::strcmp(flag, "--seeds") == 0) {
      args.opts.seeds =
          static_cast<std::uint32_t>(parse_u64(flag, next_arg(argc, argv, i)));
    } else if (std::strcmp(flag, "--quick") == 0) {
      args.opts.quick = true;
    } else if (std::strcmp(flag, "--filter") == 0) {
      args.opts.filter = next_arg(argc, argv, i);
    } else if (std::strcmp(flag, "--jobs") == 0) {
      args.opts.jobs =
          static_cast<unsigned>(parse_u64(flag, next_arg(argc, argv, i)));
    } else if (std::strcmp(flag, "--shards") == 0) {
      args.shards = parse_shards(flag, next_arg(argc, argv, i));
    } else if (std::strcmp(flag, "--out") == 0) {
      args.out_json = next_arg(argc, argv, i);
    } else if (std::strcmp(flag, "--csv") == 0) {
      args.out_csv = next_arg(argc, argv, i);
    } else if (std::strcmp(flag, "--timings") == 0) {
      args.timings = true;
    } else if (std::strcmp(flag, "--profile") == 0) {
      args.profile = true;
    } else if (std::strcmp(flag, "--trace") == 0) {
      args.trace_dir = next_arg(argc, argv, i);
    } else if (std::strcmp(flag, "--timeseries") == 0) {
      args.timeseries_dir = next_arg(argc, argv, i);
    } else if (std::strcmp(flag, "--attrib") == 0) {
      args.attrib_dir = next_arg(argc, argv, i);
    } else if (std::strcmp(flag, "--sample-interval") == 0) {
      args.sample_interval = parse_u64(flag, next_arg(argc, argv, i));
    } else if (std::strcmp(flag, "--snapshot") == 0) {
      args.snapshot_dir = next_arg(argc, argv, i);
    } else if (std::strcmp(flag, "--resume") == 0) {
      args.resume_dir = next_arg(argc, argv, i);
    } else if (std::strcmp(flag, "--sampling") == 0) {
      args.sampled = true;
      args.sampling = parse_sampling(nullptr);
    } else if (std::strncmp(flag, "--sampling=", 11) == 0) {
      args.sampled = true;
      args.sampling = parse_sampling(flag + 11);
    } else if (std::strcmp(flag, "--no-fast-forward") == 0) {
      args.fast_forward = false;
    } else if (std::strcmp(flag, "--quiet") == 0) {
      args.progress = false;
    } else if (std::strcmp(flag, "--check") == 0) {
      args.check = next_arg(argc, argv, i);
    } else if (parse_tolerance_flags(argc, argv, i, args.golden)) {
      // handled
    } else if (std::strcmp(flag, "--help") == 0) {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "latdiv-sweep: unknown option '%s'\n", flag);
      usage(stderr);
      return 2;
    }
  }
  return run_manifest(manifest, args);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "help") {
    usage(stdout);
    return 0;
  }
  if (cmd == "list") return cmd_list();
  if (cmd == "check") return cmd_check(argc, argv);
  return cmd_run(cmd, argc, argv);
}
