// Fig. 10: DRAM latency divergence (average gap between a warp's first
// and last DRAM completion) under the different schedulers.
//
// Paper: both warp-aware schemes shrink the gap; WG-M is the more
// effective for applications whose warps spread across many controllers
// (cfd, spmv, sssp, sp: ~3.2 MCs/warp), while WG alone suffices for the
// few-controller applications (sad, nw, SS, bfs: < 2 MCs/warp).
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("Fig. 10 — DRAM latency divergence by scheduler (first->last, ns)",
         "WG and WG-M shrink the gap; WG-M wins for multi-controller apps");
  print_config(opts);

  const std::vector<SchedulerKind> scheds = {
      SchedulerKind::kGmc, SchedulerKind::kWg, SchedulerKind::kWgM,
      SchedulerKind::kWgBw, SchedulerKind::kWgW};
  print_row("workload", {"MCs/warp", "GMC", "WG", "WG-M", "WG-Bw", "WG-W"});
  for (const WorkloadProfile& w : irregular_suite()) {
    std::vector<std::string> cells;
    double mcs = 0.0;
    for (std::size_t s = 0; s < scheds.size(); ++s) {
      const RunResult r = run_point(w, scheds[s], opts);
      if (s == 0) mcs = r.tracker.channels_per_load.mean();
      cells.push_back(fixed(r.divergence_gap_ns, 0));
    }
    cells.insert(cells.begin(), fixed(mcs, 2));
    print_row(w.name, cells);
  }
  std::printf("\nexpect: every warp-aware column below GMC; the multi-MC "
              "rows (cfd/sp/sssp/spmv) gain most from WG-M.\n");
  return 0;
}
