// Fig. 2: coalescing efficiency of the irregular suite (Table III).
//
// Paper: 56% of loads issued by irregular programs produce more than one
// memory request after coalescing, and the average load produces 5.9
// requests.  Regular/graphics-like workloads coalesce to ~1 request.
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("Fig. 2 — Coalescing efficiency (plus Table III workload list)",
         "56% of irregular loads produce >1 request; 5.9 requests/load avg");
  print_config(opts);

  std::printf("\nTable III — workloads (suite: benchmark):\n"
              "  Rodinia: bfs, cfd, nw, kmeans | MARS: PVC, SS | "
              "LonestarGPU: sp, bh, sssp | Parboil: spmv, sad\n\n");

  print_row("workload", {">1 req", "reqs/load", "loads"});
  double div_sum = 0.0;
  double req_sum = 0.0;
  const auto workloads = irregular_suite();
  for (const WorkloadProfile& w : workloads) {
    const RunResult r = run_point(w, SchedulerKind::kGmc, opts);
    print_row(w.name, {percent(r.divergent_load_frac),
                       fixed(r.requests_per_load, 2),
                       fixed(r.loads, 0)});
    div_sum += r.divergent_load_frac;
    req_sum += r.requests_per_load;
  }
  const double n = static_cast<double>(workloads.size());
  print_row("mean", {percent(div_sum / n), fixed(req_sum / n, 2), "-"});
  std::printf("\npaper means: 56%% divergent, 5.9 requests/load\n");

  std::printf("\nregular suite (should coalesce to ~1 request/load):\n");
  for (const WorkloadProfile& w : regular_suite()) {
    const RunResult r = run_point(w, SchedulerKind::kGmc, opts);
    print_row(w.name, {percent(r.divergent_load_frac),
                       fixed(r.requests_per_load, 2),
                       fixed(r.loads, 0)});
  }
  return 0;
}
