// Extension study: shared-data-aware warp-group priority.
//
// The paper's Conclusions propose "prioritizing warp-groups that contain
// blocks of data that are shared by multiple warps" as follow-on work.
// WG-Sh implements it on top of WG-W: a warp-group's completion score is
// discounted for every request whose DRAM row is also needed by another
// pending warp-group, so serving it opens rows that several warps want.
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("Extension — shared-data-aware warp-group priority (WG-Sh)",
         "paper Conclusions: future work beyond WG-W; weight swept below");
  print_config(opts);

  print_row("workload", {"WG-W", "WG-Sh w=1", "w=2", "w=4", "boosts"});
  std::vector<double> base_col, w1, w2, w4;
  for (const WorkloadProfile& w : irregular_suite()) {
    const double wgw = mean_ipc(w, SchedulerKind::kWgW, opts);
    std::vector<double> ipc_w;
    std::uint64_t boosts = 0;
    for (std::uint32_t weight : {1u, 2u, 4u}) {
      const auto hook = [weight](SimConfig& c) {
        c.wg.shared_weight = weight;
      };
      ipc_w.push_back(mean_ipc(w, SchedulerKind::kWgShared, opts, hook));
      if (weight == 2) {
        boosts = run_point(w, SchedulerKind::kWgShared, opts, hook)
                     .wg_shared_boosts;
      }
    }
    base_col.push_back(wgw);
    w1.push_back(ipc_w[0] / wgw);
    w2.push_back(ipc_w[1] / wgw);
    w4.push_back(ipc_w[2] / wgw);
    print_row(w.name, {fixed(wgw, 2), fixed(ipc_w[0] / wgw, 3),
                       fixed(ipc_w[1] / wgw, 3), fixed(ipc_w[2] / wgw, 3),
                       fixed(static_cast<double>(boosts), 0)});
  }
  print_row("geomean", {"-", fixed(geomean(w1), 3), fixed(geomean(w2), 3),
                        fixed(geomean(w4), 3), "-"});
  std::printf("\nReading: values are WG-Sh / WG-W IPC; >1.0 means the "
              "shared-row discount pays off on that workload.\n");
  return 0;
}
