// Fig. 8: IPC of the warp-aware schedulers normalized to the GMC baseline
// across the irregular suite.
//
// Paper: WG +3.4%, WG-M +6.2%, WG-Bw +8.4%, WG-W +10.1% (geometric mean
// over the 11 irregular workloads), with the gains largely additive.
//
// Thin wrapper over the src/exp "fig8" manifest; all driver logic
// (parallel execution, aggregation, artifacts, golden checks) lives in
// the sweep engine.  `latdiv-sweep fig8` runs the same manifest.
#include "bench/harness.hpp"

int main(int argc, char** argv) {
  return latdiv::bench::run_figure(
      "fig8", latdiv::bench::Options::parse(argc, argv));
}
