// Fig. 8: IPC of the warp-aware schedulers normalized to the GMC baseline
// across the irregular suite.
//
// Paper: WG +3.4%, WG-M +6.2%, WG-Bw +8.4%, WG-W +10.1% (geometric mean
// over the 11 irregular workloads), with the gains largely additive.
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("Fig. 8 — Performance normalized to the GMC baseline",
         "WG +3.4%, WG-M +6.2%, WG-Bw +8.4%, WG-W +10.1% (geomean, IPC)");
  print_config(opts);

  const std::vector<SchedulerKind> scheds = {
      SchedulerKind::kGmc, SchedulerKind::kWg, SchedulerKind::kWgM,
      SchedulerKind::kWgBw, SchedulerKind::kWgW};
  const auto workloads = irregular_suite();

  print_row("workload", {"GMC-IPC", "WG", "WG-M", "WG-Bw", "WG-W"});
  std::vector<std::vector<double>> speedups(scheds.size() - 1);
  for (const WorkloadProfile& w : workloads) {
    const double base = mean_ipc(w, scheds[0], opts);
    std::vector<std::string> cells{fixed(base, 2)};
    for (std::size_t s = 1; s < scheds.size(); ++s) {
      const double rel = mean_ipc(w, scheds[s], opts) / base;
      speedups[s - 1].push_back(rel);
      cells.push_back(fixed(rel, 3));
    }
    print_row(w.name, cells);
  }
  std::vector<std::string> gm_cells{"-"};
  for (auto& series : speedups) gm_cells.push_back(fixed(geomean(series), 3));
  print_row("geomean", gm_cells);

  std::printf("\npaper geomeans:      GMC=1.000  WG=1.034  WG-M=1.062  "
              "WG-Bw=1.084  WG-W=1.101\n");
  return 0;
}
