// Ablation: the WG-Bw orphan-control window (§IV-D).
//
// After the MERB threshold is met, up to `orphan_limit` leftover row hits
// are still serviced before the row-miss closes the row (the paper uses
// 2: "prevents a row-miss from leaving behind only one or two requests
// to a row").  0 disables orphan control; large values delay misses.
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("Ablation — WG-Bw orphan-control window (paper value: 2)",
         "orphan control tops up 1-2 stranded row hits before a row-miss");
  print_config(opts);

  const std::vector<std::uint32_t> limits = {0, 1, 2, 4, 8};
  std::vector<std::string> head;
  for (auto l : limits) head.push_back("orphan=" + fixed(l, 0));
  print_row("workload", head);

  std::vector<std::vector<double>> cols(limits.size());
  std::uint64_t total_topups = 0;
  for (const WorkloadProfile& w : irregular_suite()) {
    std::vector<std::string> cells;
    for (std::size_t i = 0; i < limits.size(); ++i) {
      const std::uint32_t l = limits[i];
      const RunResult r =
          run_point(w, SchedulerKind::kWgBw, opts,
                    [l](SimConfig& c) { c.wg.orphan_limit = l; });
      cols[i].push_back(r.ipc);
      cells.push_back(fixed(r.ipc, 3));
      if (l == 2) total_topups += r.wg_merb_deferrals;
    }
    print_row(w.name, cells);
  }
  std::vector<std::string> gm;
  for (auto& col : cols) gm.push_back(fixed(geomean(col), 3));
  print_row("geomean-IPC", gm);
  std::printf("\nMERB deferrals at orphan=2 (all workloads): %llu\n",
              static_cast<unsigned long long>(total_topups));
  return 0;
}
