// §VI-A: impact on non-divergent (regular, bandwidth-bound) applications.
//
// Paper: WG-W gives a modest +1.8% over GMC on the regular suite with NO
// application suffering a slowdown — the warp-group scoring degenerates to
// row-hit streaming when every warp has one (or few colocated) requests.
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("§VI-A — Regular (non-divergent) applications under WG-W",
         "+1.8% geomean over GMC; no application slows down");
  print_config(opts);

  print_row("workload", {"GMC-IPC", "WG-W", "speedup", "rowhit", "util"});
  std::vector<double> speedups;
  bool any_slowdown = false;
  for (const WorkloadProfile& w : regular_suite()) {
    const double base = mean_ipc(w, SchedulerKind::kGmc, opts);
    const RunResult ww = run_point(w, SchedulerKind::kWgW, opts);
    const double rel = mean_ipc(w, SchedulerKind::kWgW, opts) / base;
    speedups.push_back(rel);
    any_slowdown |= rel < 0.99;
    print_row(w.name, {fixed(base, 2), fixed(rel * base, 2), fixed(rel, 3),
                       percent(ww.row_hit_rate),
                       percent(ww.bandwidth_utilization)});
  }
  print_row("geomean", {"-", "-", fixed(geomean(speedups), 3), "-", "-"});
  std::printf("\npaper: +1.8%% geomean, no slowdowns.  %s\n",
              any_slowdown ? "WARNING: a slowdown was observed here."
                           : "No slowdown observed (within noise).");
  return 0;
}
