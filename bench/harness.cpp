#include "bench/harness.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

namespace latdiv::bench {

Options Options::parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> std::uint64_t {
      return i + 1 < argc ? std::strtoull(argv[++i], nullptr, 10) : 0;
    };
    if (std::strcmp(argv[i], "--cycles") == 0) {
      opts.cycles = value();
    } else if (std::strcmp(argv[i], "--warmup") == 0) {
      opts.warmup = value();
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opts.seed = value();
    } else if (std::strcmp(argv[i], "--seeds") == 0) {
      opts.seeds = static_cast<std::uint32_t>(value());
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      opts.cycles /= 4;
      opts.warmup /= 4;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--cycles N] [--warmup N] [--seed N] [--quick]\n",
                   argv[0]);
    }
  }
  if (opts.warmup >= opts.cycles) opts.warmup = opts.cycles / 10;
  return opts;
}

RunResult run_point(const WorkloadProfile& workload, SchedulerKind scheduler,
                    const Options& opts, const ConfigHook& hook) {
  SimConfig cfg;
  cfg.workload = workload;
  cfg.scheduler = scheduler;
  cfg.max_cycles = opts.cycles;
  cfg.warmup_cycles = opts.warmup;
  cfg.seed = opts.seed;
  if (hook) hook(cfg);
  Simulator sim(cfg);
  return sim.run();
}

double mean_ipc(const WorkloadProfile& workload, SchedulerKind scheduler,
                const Options& opts, const ConfigHook& hook) {
  double sum = 0.0;
  for (std::uint32_t t = 0; t < opts.seeds; ++t) {
    Options o = opts;
    o.seed = opts.seed + t;
    sum += run_point(workload, scheduler, o, hook).ipc;
  }
  return sum / opts.seeds;
}

std::vector<std::vector<RunResult>> run_matrix(
    const std::vector<WorkloadProfile>& workloads,
    const std::vector<SchedulerKind>& schedulers, const Options& opts,
    const ConfigHook& hook) {
  std::vector<std::vector<RunResult>> out;
  out.reserve(workloads.size());
  for (const WorkloadProfile& w : workloads) {
    std::vector<RunResult> row;
    row.reserve(schedulers.size());
    for (SchedulerKind s : schedulers) {
      row.push_back(run_point(w, s, opts, hook));
    }
    out.push_back(std::move(row));
  }
  return out;
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

void print_row(const std::string& head, const std::vector<std::string>& cells,
               int cell_width) {
  std::printf("%-16s", head.c_str());
  for (const std::string& c : cells) std::printf("%*s", cell_width, c.c_str());
  std::printf("\n");
}

void banner(const std::string& figure, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("paper reference: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

void print_config(const Options& opts) {
  const SimConfig cfg;
  std::printf(
      "config (Table II): %u SMs x %u warps, %u channels, GDDR5 tCK=%.3fns, "
      "RQ/WQ %u/%u (watermarks %u/%u), L1 %uKB/%u-way, L2 %uKB/%u-way\n",
      cfg.num_sms, cfg.sm.warps, cfg.icnt.partitions, cfg.dram.tck_ns,
      cfg.mc.read_queue_size, cfg.mc.write_queue_size,
      cfg.mc.wq_high_watermark, cfg.mc.wq_low_watermark,
      cfg.sm.l1.size_bytes / 1024, cfg.sm.l1.ways,
      cfg.partition.l2.size_bytes / 1024, cfg.partition.l2.ways);
  std::printf("run: %llu cycles (%llu warmup), seed %llu\n",
              static_cast<unsigned long long>(opts.cycles),
              static_cast<unsigned long long>(opts.warmup),
              static_cast<unsigned long long>(opts.seed));
}

}  // namespace latdiv::bench
