#include "bench/harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exp/driver.hpp"

namespace latdiv::bench {

const char* Options::usage() {
  return "options:\n"
         "  --cycles N   simulated DRAM command-clock cycles per run "
         "(default 50000)\n"
         "  --warmup N   warmup cycles excluded from IPC (default 5000)\n"
         "  --seed N     base workload seed (default 1)\n"
         "  --seeds N    independent trials averaged per point (default 1)\n"
         "  --quick      1/4-length run for smoke testing\n"
         "  --shards N   channel shards per simulated point (default\n"
         "               $LATDIV_SHARDS or 1; results are byte-identical\n"
         "               at any value)\n"
         "sweep-engine options (manifest-backed benches):\n"
         "  --jobs N     executor threads (default 1)\n"
         "  --filter S   keep only sweep points whose id contains S\n"
         "  --out FILE   write the JSON artifact\n"
         "  --csv FILE   write the CSV artifact\n"
         "  --check FILE golden-check the artifact against FILE\n"
         "  --timings    include per-point wall_ms in the JSON\n"
         "  --quiet      suppress per-point progress on stderr\n"
         "  --help       print this message\n";
}

Options Options::parse(int argc, char** argv) {
  Options opts;
  const auto shard_count = [&](const char* origin,
                               const char* text) -> std::uint32_t {
    char* end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || v == 0 || v > 4096) {
      std::fprintf(stderr, "%s: %s wants a shard count >= 1, got '%s'\n",
                   argv[0], origin, text);
      std::exit(2);
    }
    return static_cast<std::uint32_t>(v);
  };
  if (const char* env = std::getenv("LATDIV_SHARDS")) {
    opts.shards = shard_count("LATDIV_SHARDS", env);
  }
  const auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s needs a value\n%s", argv[0], argv[i],
                   usage());
      std::exit(2);
    }
    return argv[++i];
  };
  const auto number = [&](int& i) -> std::uint64_t {
    const char* flag = argv[i];
    const char* text = value(i);
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
      std::fprintf(stderr, "%s: %s wants a number, got '%s'\n", argv[0], flag,
                   text);
      std::exit(2);
    }
    return v;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cycles") == 0) {
      opts.cycles = number(i);
    } else if (std::strcmp(argv[i], "--warmup") == 0) {
      opts.warmup = number(i);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opts.seed = number(i);
    } else if (std::strcmp(argv[i], "--seeds") == 0) {
      opts.seeds = static_cast<std::uint32_t>(number(i));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      opts.shards = shard_count("--shards", value(i));
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      opts.jobs = static_cast<unsigned>(number(i));
    } else if (std::strcmp(argv[i], "--filter") == 0) {
      opts.filter = value(i);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      opts.out_json = value(i);
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      opts.out_csv = value(i);
    } else if (std::strcmp(argv[i], "--check") == 0) {
      opts.check = value(i);
    } else if (std::strcmp(argv[i], "--timings") == 0) {
      opts.timings = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      opts.quiet = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [options]\n%s", argv[0], usage());
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\nusage: %s [options]\n%s",
                   argv[0], argv[i], argv[0], usage());
      std::exit(2);
    }
  }
  // Apply --quick last so it composes with --cycles in any flag order.
  if (opts.quick) {
    opts.cycles /= 4;
    opts.warmup /= 4;
  }
  if (opts.warmup >= opts.cycles) opts.warmup = opts.cycles / 10;
  return opts;
}

int run_figure(const std::string& manifest, const Options& opts) {
  exp::SweepRunArgs args;
  // --quick is already folded into cycles/warmup by parse().
  args.opts.cycles = opts.cycles;
  args.opts.warmup = opts.warmup;
  args.opts.seed = opts.seed;
  args.opts.seeds = opts.seeds;
  args.opts.filter = opts.filter;
  args.opts.jobs = opts.jobs;
  args.out_json = opts.out_json;
  args.out_csv = opts.out_csv;
  args.check = opts.check;
  args.timings = opts.timings;
  args.progress = !opts.quiet;
  args.shards = opts.shards;
  return exp::run_manifest(manifest, args);
}

RunResult run_point(const WorkloadProfile& workload, SchedulerKind scheduler,
                    const Options& opts, const ConfigHook& hook) {
  SimConfig cfg;
  cfg.workload = workload;
  cfg.scheduler = scheduler;
  cfg.max_cycles = opts.cycles;
  cfg.warmup_cycles = opts.warmup;
  cfg.seed = opts.seed;
  cfg.shards = opts.shards;
  if (hook) hook(cfg);
  Simulator sim(cfg);
  return sim.run();
}

double mean_ipc(const WorkloadProfile& workload, SchedulerKind scheduler,
                const Options& opts, const ConfigHook& hook) {
  double sum = 0.0;
  for (std::uint32_t t = 0; t < opts.seeds; ++t) {
    Options o = opts;
    o.seed = opts.seed + t;
    sum += run_point(workload, scheduler, o, hook).ipc;
  }
  return sum / opts.seeds;
}

std::vector<std::vector<RunResult>> run_matrix(
    const std::vector<WorkloadProfile>& workloads,
    const std::vector<SchedulerKind>& schedulers, const Options& opts,
    const ConfigHook& hook) {
  std::vector<std::vector<RunResult>> out;
  out.reserve(workloads.size());
  for (const WorkloadProfile& w : workloads) {
    std::vector<RunResult> row;
    row.reserve(schedulers.size());
    for (SchedulerKind s : schedulers) {
      row.push_back(run_point(w, s, opts, hook));
    }
    out.push_back(std::move(row));
  }
  return out;
}

void print_row(const std::string& head, const std::vector<std::string>& cells,
               int cell_width) {
  std::printf("%-16s", head.c_str());
  for (const std::string& c : cells) std::printf("%*s", cell_width, c.c_str());
  std::printf("\n");
}

void banner(const std::string& figure, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("paper reference: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

void print_config(const Options& opts) {
  const SimConfig cfg;
  std::printf(
      "config (Table II): %u SMs x %u warps, %u channels, GDDR5 tCK=%.3fns, "
      "RQ/WQ %u/%u (watermarks %u/%u), L1 %uKB/%u-way, L2 %uKB/%u-way\n",
      cfg.num_sms, cfg.sm.warps, cfg.icnt.partitions, cfg.dram.tck_ns,
      cfg.mc.read_queue_size, cfg.mc.write_queue_size,
      cfg.mc.wq_high_watermark, cfg.mc.wq_low_watermark,
      cfg.sm.l1.size_bytes / 1024, cfg.sm.l1.ways,
      cfg.partition.l2.size_bytes / 1024, cfg.partition.l2.ways);
  std::printf("run: %llu cycles (%llu warmup), seed %llu\n",
              static_cast<unsigned long long>(opts.cycles),
              static_cast<unsigned long long>(opts.warmup),
              static_cast<unsigned long long>(opts.seed));
}

}  // namespace latdiv::bench
