// Fig. 3: extent of main-memory latency divergence under the GMC baseline.
//
// Paper: the last request of a warp's load completes at 1.6x the latency
// of the first on average, and each DRAM-touching warp load spreads over
// 2.5 memory controllers (cfd/spmv/sssp/sp ~3.2; sad/nw/SS/bfs < 2).
// §III-A adds: a warp touches ~2 banks and only ~30% of its requests
// share a DRAM row.
#include <cstdio>

#include "bench/harness.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("Fig. 3 — Extent of memory latency divergence (GMC baseline)",
         "last/first latency ~1.6x; 2.5 MCs/warp; ~2 banks; ~30% same-row");
  print_config(opts);

  print_row("workload", {"last/first", "MCs/warp", "banks", "same-row"});
  double ratio_sum = 0.0, mc_sum = 0.0, bank_sum = 0.0, row_sum = 0.0;
  const auto workloads = irregular_suite();
  for (const WorkloadProfile& w : workloads) {
    const RunResult r = run_point(w, SchedulerKind::kGmc, opts);
    const TrackerSummary& t = r.tracker;
    print_row(w.name, {fixed(t.last_to_first_ratio.mean(), 2),
                       fixed(t.channels_per_load.mean(), 2),
                       fixed(t.banks_per_load.mean(), 2),
                       percent(t.same_row_frac.mean())});
    ratio_sum += t.last_to_first_ratio.mean();
    mc_sum += t.channels_per_load.mean();
    bank_sum += t.banks_per_load.mean();
    row_sum += t.same_row_frac.mean();
  }
  const double n = static_cast<double>(workloads.size());
  print_row("mean", {fixed(ratio_sum / n, 2), fixed(mc_sum / n, 2),
                     fixed(bank_sum / n, 2), percent(row_sum / n)});
  std::printf("\npaper means: last/first=1.6x, 2.5 MCs/warp, 2 banks/warp "
              "(per §III-A), ~30%% same-row\n");
  std::printf("note: banks here counts distinct (channel,bank) pairs per "
              "warp load; per-channel banks = banks / MCs.\n");
  return 0;
}
