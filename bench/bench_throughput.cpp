// Simulation-throughput harness: host Mcycles/s per workload/scheduler.
//
// Not a paper figure — this measures the *simulator*, not the simulated
// machine.  For each irregular workload it runs the GMC baseline and the
// full WG-W design twice, with idle-cycle fast-forward disabled and
// enabled, and reports simulated DRAM Mcycles per wall-clock second plus
// the fast-forward speedup.  The two runs must produce identical IPC
// (fast-forward is behavior-preserving by contract; see DESIGN.md "Hot
// path & determinism contract") — any divergence aborts the bench.
//
// Wall-clock numbers are machine-dependent; track trends, not absolutes.
// EXPERIMENTS.md records the reference sweep-level numbers.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/harness.hpp"

using namespace latdiv;
using namespace latdiv::bench;

namespace {

struct Measured {
  double ipc = 0.0;
  double mcycles_per_s = 0.0;  ///< simulated DRAM Mcycles / wall second
};

Measured measure(const WorkloadProfile& w, SchedulerKind sched,
                 const Options& opts, bool fast_forward) {
  const auto start = std::chrono::steady_clock::now();  // lint: wall-clock-ok
  const RunResult r = run_point(
      w, sched, opts,
      [&](SimConfig& cfg) { cfg.idle_fast_forward = fast_forward; });
  const double wall_s =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now() - start)  // lint: wall-clock-ok
          .count();
  Measured m;
  m.ipc = r.ipc;
  m.mcycles_per_s =
      wall_s > 0.0 ? static_cast<double>(r.dram_cycles) / 1e6 / wall_s : 0.0;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("simulator throughput — host Mcycles/s, fast-forward off vs on",
         "identical IPC both ways; speedup is workload-dependent");
  print_config(opts);

  print_row("workload", {"sched", "Mc/s off", "Mc/s on", "speedup"});
  std::vector<double> speedups;
  for (const WorkloadProfile& w : irregular_suite()) {
    for (const SchedulerKind sched :
         {SchedulerKind::kGmc, SchedulerKind::kWgW}) {
      const Measured off = measure(w, sched, opts, /*fast_forward=*/false);
      const Measured on = measure(w, sched, opts, /*fast_forward=*/true);
      if (off.ipc != on.ipc) {
        std::fprintf(stderr,
                     "bench_throughput: fast-forward changed %s/%s IPC "
                     "(%.6f vs %.6f) — behavior contract violated\n",
                     w.name.c_str(),
                     sched == SchedulerKind::kGmc ? "GMC" : "WG-W", off.ipc,
                     on.ipc);
        return 1;
      }
      const double speedup = safe_ratio(on.mcycles_per_s, off.mcycles_per_s);
      speedups.push_back(speedup);
      print_row(w.name, {sched == SchedulerKind::kGmc ? "GMC" : "WG-W",
                         fixed(off.mcycles_per_s, 2),
                         fixed(on.mcycles_per_s, 2), fixed(speedup, 2)});
    }
  }
  print_row("geomean", {"-", "-", "-", fixed(geomean(speedups), 2)});
  std::printf("\nfast-forward helps most while every component is idle "
              "(warmup tails, drained phases); dense phases run at the "
              "baseline rate.\n");
  return 0;
}
