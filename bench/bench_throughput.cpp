// Simulation-throughput harness: host Mcycles/s per workload/scheduler.
//
// Not a paper figure — this measures the *simulator*, not the simulated
// machine.  For each irregular workload it runs the GMC baseline and the
// full WG-W design twice, with idle-cycle fast-forward disabled and
// enabled, and reports simulated DRAM Mcycles per wall-clock second plus
// the fast-forward speedup.  The two runs must produce identical IPC
// (fast-forward is behavior-preserving by contract; see DESIGN.md "Hot
// path & determinism contract") — any divergence aborts the bench.
//
// Wall-clock numbers are machine-dependent; track trends, not absolutes.
// EXPERIMENTS.md records the reference sweep-level numbers.
#include <sys/resource.h>

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench/harness.hpp"
#include "ckpt/sampler.hpp"
#include "scenario/scenario.hpp"
#include "workload/trace.hpp"

using namespace latdiv;
using namespace latdiv::bench;

namespace {

struct Measured {
  double ipc = 0.0;
  double mcycles_per_s = 0.0;  ///< simulated DRAM Mcycles / wall second
};

enum class ObsMode {
  kOff,      ///< no hub at all — the shipping disabled path
  kMetrics,  ///< hub present, histograms only (no sink, no sampling)
  kTrace,    ///< full request-lifecycle tracing into the in-memory sink
  kAttrib,   ///< latency-attribution profiler (no artifact written)
};

Measured measure(const WorkloadProfile& w, SchedulerKind sched,
                 const Options& opts, bool fast_forward,
                 ObsMode obs = ObsMode::kOff) {
  const auto start = std::chrono::steady_clock::now();  // lint: wall-clock-ok
  const RunResult r = run_point(w, sched, opts, [&](SimConfig& cfg) {
    cfg.idle_fast_forward = fast_forward;
    if (obs == ObsMode::kMetrics) {
      cfg.obs.metrics_path = "/dev/null";  // enables the hub, nothing else
    } else if (obs == ObsMode::kTrace) {
      cfg.obs.trace = true;  // no trace_path: buffers in memory only
    } else if (obs == ObsMode::kAttrib) {
      cfg.obs.attrib = true;  // no attrib_path: aggregates in memory only
    }
  });
  const double wall_s =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now() - start)  // lint: wall-clock-ok
          .count();
  Measured m;
  m.ipc = r.ipc;
  m.mcycles_per_s =
      wall_s > 0.0 ? static_cast<double>(r.dram_cycles) / 1e6 / wall_s : 0.0;
  return m;
}

/// Observability pricing: the disabled path must cost nothing measurable
/// (<1% — it is one null-pointer branch per would-be event), and enabled
/// modes must never perturb simulated results.  Any IPC difference across
/// modes aborts the bench; wall-clock ratios are reported for trend
/// tracking (EXPERIMENTS.md records reference numbers).
int obs_overhead_section(const Options& opts) {
  std::printf("\nobservability overhead — obs off / repeat (noise floor) / "
              "metrics-only / attribution / full tracing\n");
  print_row("workload",
            {"sched", "off Mc/s", "noise", "metrics x", "attrib x",
             "trace x"});
  for (const WorkloadProfile& w : irregular_suite()) {
    for (const SchedulerKind sched :
         {SchedulerKind::kGmc, SchedulerKind::kWgW}) {
      const char* sname = sched == SchedulerKind::kGmc ? "GMC" : "WG-W";
      const Measured off1 = measure(w, sched, opts, true, ObsMode::kOff);
      const Measured off2 = measure(w, sched, opts, true, ObsMode::kOff);
      const Measured met = measure(w, sched, opts, true, ObsMode::kMetrics);
      const Measured att = measure(w, sched, opts, true, ObsMode::kAttrib);
      const Measured trc = measure(w, sched, opts, true, ObsMode::kTrace);
      if (off1.ipc != off2.ipc || off1.ipc != met.ipc ||
          off1.ipc != att.ipc || off1.ipc != trc.ipc) {
        std::fprintf(stderr,
                     "bench_throughput: observability perturbed %s/%s IPC "
                     "(off %.6f, metrics %.6f, attrib %.6f, trace %.6f)\n",
                     w.name.c_str(), sname, off1.ipc, met.ipc, att.ipc,
                     trc.ipc);
        return 1;
      }
      // Noise floor: relative spread of two identical disabled runs.
      const double base =
          0.5 * (off1.mcycles_per_s + off2.mcycles_per_s);
      const double noise =
          base > 0.0
              ? std::fabs(off1.mcycles_per_s - off2.mcycles_per_s) / base
              : 0.0;
      print_row(w.name,
                {sname, fixed(base, 2), fixed(noise * 100.0, 1) + "%",
                 fixed(safe_ratio(base, met.mcycles_per_s), 2),
                 fixed(safe_ratio(base, att.mcycles_per_s), 2),
                 fixed(safe_ratio(base, trc.mcycles_per_s), 2)});
    }
  }
  std::printf("\nthe disabled path *is* the baseline path (a null hub "
              "pointer per event site); compare 'off Mc/s' against the "
              "reference numbers in EXPERIMENTS.md — drift beyond the "
              "noise column flags a regression.\n");
  return 0;
}

/// Shard scaling: the channel-sharded core (src/par) at 1/2/4/6 shards,
/// one row per shard count with per-workload Mc/s cells and a speedup
/// column vs the serial core.  IPC must be identical at every count —
/// the determinism contract (tests/test_shard.cpp) makes shards a pure
/// wall-clock knob; any divergence aborts the bench.  Wall-clock scaling
/// depends on the host's core count (worker threads are
/// min(shards, hardware threads), overridable via LATDIV_SHARD_THREADS);
/// single-core hosts see only the sharding overhead.
int shard_scaling_section(const Options& opts) {
  std::printf("\nshard scaling — channel-sharded core, Mc/s by shard "
              "count (fast-forward on)\n");
  const std::vector<WorkloadProfile> workloads = irregular_suite();
  std::vector<std::string> heads;
  for (const WorkloadProfile& w : workloads) heads.push_back(w.name);
  heads.push_back("speedup");
  print_row("shards", heads);

  std::vector<double> base_ipc;
  std::vector<double> base_mcs;
  for (const std::uint32_t shards : {1u, 2u, 4u, 6u}) {
    Options sharded = opts;
    sharded.shards = shards;
    std::vector<std::string> cells;
    std::vector<double> ratios;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      const Measured m =
          measure(workloads[i], SchedulerKind::kWgW, sharded, true);
      if (shards == 1) {
        base_ipc.push_back(m.ipc);
        base_mcs.push_back(m.mcycles_per_s);
      } else if (m.ipc != base_ipc[i]) {
        std::fprintf(stderr,
                     "bench_throughput: shards=%u changed %s IPC "
                     "(%.6f vs %.6f) — determinism contract violated\n",
                     shards, workloads[i].name.c_str(), m.ipc, base_ipc[i]);
        return 1;
      }
      cells.push_back(fixed(m.mcycles_per_s, 2));
      ratios.push_back(safe_ratio(m.mcycles_per_s, base_mcs[i]));
    }
    cells.push_back(shards == 1 ? "1.00x" : fixed(geomean(ratios), 2) + "x");
    print_row(std::to_string(shards), cells);
  }
  std::printf("\nidentical IPC at every shard count is the gate; Mc/s "
              "scaling tracks the host's usable cores (EXPERIMENTS.md "
              "records reference numbers).\n");
  return 0;
}

/// Appends one JSON object literal to a comma-joined row list.
void json_row(std::string& rows, const std::string& obj) {
  if (!rows.empty()) rows += ",";
  rows += obj;
}

/// Interval sampling (src/ckpt/sampler.*): detailed vs SMARTS-sampled
/// runs of >= 1M cycles per irregular workload under the full WG-W
/// design.  Two hard gates, both machine-independent: the schedule must
/// cut detailed cycles by >= 5x, and the geomean relative IPC error of
/// the sampled estimate must stay within 2%.  Wall-clock speedups
/// (sequential and jobs=4 snapshot fan-out) are reported for trend
/// tracking only.  Any gate failure aborts the bench.
int sampling_section(const Options& opts, std::string& json) {
  const Cycle cycles = std::max<Cycle>(opts.cycles, 1'000'000);
  const ckpt::SamplingConfig sched;  // default 8k detail / 4k warm / 120k
  std::printf("\ninterval sampling — detailed vs sampled, %llu cycles, "
              "WG-W (detail %llu / warm %llu / period %llu)\n",
              static_cast<unsigned long long>(cycles),
              static_cast<unsigned long long>(sched.detail_cycles),
              static_cast<unsigned long long>(sched.warm_cycles),
              static_cast<unsigned long long>(sched.period_cycles));
  print_row("workload", {"det ipc", "smp ipc", "err", "cyc x", "wall x",
                         "fan4 x"});

  std::vector<double> errs;
  std::vector<double> wall_speedups;
  double min_cycle_reduction = 0.0;
  std::string rows;
  for (const WorkloadProfile& w : irregular_suite()) {
    SimConfig cfg;
    cfg.workload = w;
    cfg.scheduler = SchedulerKind::kWgW;
    cfg.max_cycles = cycles;
    cfg.warmup_cycles = 0;  // the estimator has no warmup-exclusion notion
    cfg.seed = opts.seed;

    const auto t0 = std::chrono::steady_clock::now();  // lint: wall-clock-ok
    const RunResult detailed = Simulator(cfg).run();
    const auto t1 = std::chrono::steady_clock::now();  // lint: wall-clock-ok
    const ckpt::SampledResult sampled = ckpt::run_sampled(cfg, sched, 1);
    const auto t2 = std::chrono::steady_clock::now();  // lint: wall-clock-ok
    const ckpt::SampledResult fanned = ckpt::run_sampled(cfg, sched, 4);
    const auto t3 = std::chrono::steady_clock::now();  // lint: wall-clock-ok

    const double wall_det = std::chrono::duration<double>(t1 - t0).count();
    const double wall_smp = std::chrono::duration<double>(t2 - t1).count();
    const double wall_fan = std::chrono::duration<double>(t3 - t2).count();
    const double err = detailed.ipc > 0.0
                           ? std::fabs(sampled.ipc - detailed.ipc) /
                                 detailed.ipc
                           : 0.0;
    const double cycle_reduction =
        sampled.detailed_cycles > 0
            ? static_cast<double>(cycles) /
                  static_cast<double>(sampled.detailed_cycles)
            : 0.0;
    const double wall_speedup = safe_ratio(wall_det, wall_smp);
    errs.push_back(std::max(err, 1e-9));  // geomean needs positive terms
    wall_speedups.push_back(wall_speedup);
    min_cycle_reduction = min_cycle_reduction == 0.0
                              ? cycle_reduction
                              : std::min(min_cycle_reduction,
                                         cycle_reduction);
    print_row(w.name,
              {fixed(detailed.ipc, 4), fixed(sampled.ipc, 4),
               fixed(err * 100.0, 2) + "%", fixed(cycle_reduction, 1),
               fixed(wall_speedup, 2), fixed(safe_ratio(wall_det, wall_fan), 2)});

    std::ostringstream row;
    row << "{\"workload\":\"" << w.name << "\",\"detailed_ipc\":"
        << detailed.ipc << ",\"sampled_ipc\":" << sampled.ipc
        << ",\"fanout_ipc\":" << fanned.ipc << ",\"ipc_rel_err\":" << err
        << ",\"cycle_reduction\":" << cycle_reduction
        << ",\"wall_speedup\":" << wall_speedup
        << ",\"fanout_wall_speedup\":" << safe_ratio(wall_det, wall_fan)
        << "}";
    json_row(rows, row.str());
  }
  const double err_geomean = geomean(errs);
  const double wall_geomean = geomean(wall_speedups);
  print_row("geomean", {"-", "-", fixed(err_geomean * 100.0, 2) + "%",
                        fixed(min_cycle_reduction, 1) + " min",
                        fixed(wall_geomean, 2), "-"});

  std::ostringstream sec;
  sec << "{\"cycles\":" << cycles << ",\"schedule\":{\"detail\":"
      << sched.detail_cycles << ",\"warm\":" << sched.warm_cycles
      << ",\"period\":" << sched.period_cycles << "},\"rows\":[" << rows
      << "],\"geomean_ipc_rel_err\":" << err_geomean
      << ",\"geomean_wall_speedup\":" << wall_geomean
      << ",\"min_cycle_reduction\":" << min_cycle_reduction << "}";
  json = sec.str();

  if (min_cycle_reduction < 5.0) {
    std::fprintf(stderr,
                 "bench_throughput: sampling cut detailed cycles only "
                 "%.1fx (gate: >= 5x)\n",
                 min_cycle_reduction);
    return 1;
  }
  if (err_geomean > 0.02) {
    std::fprintf(stderr,
                 "bench_throughput: sampled IPC geomean error %.2f%% "
                 "exceeds the 2%% gate\n",
                 err_geomean * 100.0);
    return 1;
  }
  std::printf("\nboth gates hold: >= 5x fewer detailed cycles, sampled "
              "IPC within 2%% geomean of the straight-through run "
              "(tests/test_ckpt_sampling.cpp pins the per-scenario "
              "bounds).\n");
  return 0;
}

/// Peak resident set size in MiB (0.0 if unavailable).  Linux reports
/// ru_maxrss in KiB.
double peak_rss_mib() {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

/// Bounded-memory streaming replay: a >=10M-record v2 trace must replay
/// through TraceReplayer's streaming mode without materialising the
/// decoded stream (which would be total_records * sizeof(WarpInstr),
/// multiple GiB).  Records a scenario microkernel to a temp file, drains
/// every record once via the streaming replayer, and gates on the
/// peak-RSS delta across the replay.  This is the enforcement point for
/// the O(chunk)-memory contract in DESIGN.md ("Workload frontends");
/// tests/test_trace_v2.cpp proves streaming == in-memory equivalence on
/// small traces, this proves the big one never loads.
int trace_streaming_section() {
  constexpr std::uint32_t kSms = 8;
  constexpr std::uint32_t kWarps = 16;
  constexpr std::uint64_t kRecords = 10'000'000;  // divisible by 8*16
  constexpr double kRssBoundMib = 256.0;
  const char* path = "/tmp/latdiv_bench_stream.trace";

  std::printf("\ntrace streaming — bounded-memory v2 replay, %.0fM records\n",
              static_cast<double>(kRecords) / 1e6);
  // Narrow pointer-chase variant: 8 active lanes keeps the temp file a
  // few hundred MiB while the *decoded* stream is still ~2.5 GiB.
  scenario::ScenarioSpec spec = scenario::scenario_by_name("pointer-chase");
  spec.params.chase_lanes = 8;

  const auto gen_start =
      std::chrono::steady_clock::now();  // lint: wall-clock-ok
  {
    const auto source = scenario::make_scenario(spec, kSms, kWarps, 1);
    TraceWriter writer(path, kSms, kWarps);
    while (writer.records_written() < kRecords) {
      for (std::uint32_t sm = 0; sm < kSms; ++sm) {
        for (std::uint32_t w = 0; w < kWarps; ++w) {
          writer.record(static_cast<SmId>(sm), static_cast<WarpId>(w),
                        source->next(static_cast<SmId>(sm),
                                     static_cast<WarpId>(w)));
        }
      }
    }
    writer.close();
  }
  const double gen_s =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now() - gen_start)  // lint: wall-clock-ok
          .count();

  const double rss_before = peak_rss_mib();
  const auto replay_start =
      std::chrono::steady_clock::now();  // lint: wall-clock-ok
  std::uint64_t drained = 0;
  double file_mib = 0.0;
  {
    TraceReplayer replayer(path, ReplayMode::kStreaming);
    if (!replayer.streaming()) {
      std::fprintf(stderr,
                   "bench_throughput: replayer did not open in streaming "
                   "mode\n");
      std::remove(path);
      return 1;
    }
    file_mib = static_cast<double>(scan_trace(path).file_bytes) / 1048576.0;
    // Generation was round-robin, so every warp holds exactly
    // total / (sms*warps) records; one round-robin pass of that depth
    // touches every record exactly once.
    const std::uint64_t per_warp =
        replayer.total_records() / (kSms * kWarps);
    for (std::uint64_t i = 0; i < per_warp; ++i) {
      for (std::uint32_t sm = 0; sm < kSms; ++sm) {
        for (std::uint32_t w = 0; w < kWarps; ++w) {
          const WarpInstr instr = replayer.next(
              static_cast<SmId>(sm), static_cast<WarpId>(w));
          (void)instr;  // next() reads from disk; it cannot be elided
          ++drained;
        }
      }
    }
  }
  const double replay_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    replay_start)  // lint: wall-clock-ok
          .count();
  const double rss_delta = peak_rss_mib() - rss_before;
  const double decoded_mib = static_cast<double>(kRecords) *
                             static_cast<double>(sizeof(WarpInstr)) /
                             1048576.0;
  std::remove(path);

  print_row("phase", {"records", "MiB", "Mrec/s", "rss delta"});
  print_row("generate",
            {fixed(static_cast<double>(kRecords) / 1e6, 0) + "M",
             fixed(file_mib, 1),
             fixed(gen_s > 0.0
                       ? static_cast<double>(kRecords) / 1e6 / gen_s
                       : 0.0,
                   2),
             "-"});
  print_row("stream",
            {fixed(static_cast<double>(drained) / 1e6, 0) + "M",
             fixed(file_mib, 1),
             fixed(replay_s > 0.0
                       ? static_cast<double>(drained) / 1e6 / replay_s
                       : 0.0,
                   2),
             fixed(rss_delta, 1) + " MiB"});
  if (drained != kRecords) {
    std::fprintf(stderr,
                 "bench_throughput: streaming replay drained %" PRIu64
                 " of %" PRIu64 " records\n",
                 drained, kRecords);
    return 1;
  }
  if (rss_delta > kRssBoundMib) {
    std::fprintf(stderr,
                 "bench_throughput: streaming replay grew RSS by %.1f MiB "
                 "(bound %.0f MiB; decoded stream would be %.0f MiB) — "
                 "bounded-memory contract violated\n",
                 rss_delta, kRssBoundMib, decoded_mib);
    return 1;
  }
  std::printf("\nstreaming replay holds one %u-record chunk per active "
              "warp; the decoded stream would be %.0f MiB, the RSS bound "
              "is %.0f MiB.\n",
              kTraceChunkRecords, decoded_mib, kRssBoundMib);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("simulator throughput — host Mcycles/s, fast-forward off vs on",
         "identical IPC both ways; speedup is workload-dependent");
  print_config(opts);

  print_row("workload", {"sched", "Mc/s off", "Mc/s on", "speedup"});
  std::vector<double> speedups;
  std::string ff_rows;
  for (const WorkloadProfile& w : irregular_suite()) {
    for (const SchedulerKind sched :
         {SchedulerKind::kGmc, SchedulerKind::kWgW}) {
      const Measured off = measure(w, sched, opts, /*fast_forward=*/false);
      const Measured on = measure(w, sched, opts, /*fast_forward=*/true);
      if (off.ipc != on.ipc) {
        std::fprintf(stderr,
                     "bench_throughput: fast-forward changed %s/%s IPC "
                     "(%.6f vs %.6f) — behavior contract violated\n",
                     w.name.c_str(),
                     sched == SchedulerKind::kGmc ? "GMC" : "WG-W", off.ipc,
                     on.ipc);
        return 1;
      }
      const double speedup = safe_ratio(on.mcycles_per_s, off.mcycles_per_s);
      speedups.push_back(speedup);
      const char* sname = sched == SchedulerKind::kGmc ? "GMC" : "WG-W";
      print_row(w.name, {sname, fixed(off.mcycles_per_s, 2),
                         fixed(on.mcycles_per_s, 2), fixed(speedup, 2)});
      std::ostringstream row;
      row << "{\"workload\":\"" << w.name << "\",\"scheduler\":\"" << sname
          << "\",\"mcycles_per_s_off\":" << off.mcycles_per_s
          << ",\"mcycles_per_s_on\":" << on.mcycles_per_s
          << ",\"speedup\":" << speedup << "}";
      json_row(ff_rows, row.str());
    }
  }
  print_row("geomean", {"-", "-", "-", fixed(geomean(speedups), 2)});
  std::printf("\nfast-forward helps most while every component is idle "
              "(warmup tails, drained phases); dense phases run at the "
              "baseline rate.\n");
  const int shard_rc = shard_scaling_section(opts);
  if (shard_rc != 0) return shard_rc;
  std::string sampling_json;
  const int sampling_rc = sampling_section(opts, sampling_json);
  if (sampling_rc != 0) return sampling_rc;
  const int obs_rc = obs_overhead_section(opts);
  if (obs_rc != 0) return obs_rc;
  const int stream_rc = trace_streaming_section();
  if (stream_rc != 0) return stream_rc;

  // Machine-readable artifact (uploaded by the release-throughput CI
  // job).  Wall-clock fields are for trend inspection, never gates; the
  // sampling section's gate results are recorded so downstream tooling
  // can assert on them without re-parsing the console output.
  const std::string out_path =
      opts.out_json.empty() ? "BENCH_throughput.json" : opts.out_json;
  std::ostringstream doc;
  doc << "{\"bench\":\"throughput\",\"cycles\":" << opts.cycles
      << ",\"fast_forward\":{\"rows\":[" << ff_rows
      << "],\"geomean_speedup\":" << geomean(speedups)
      << "},\"sampling\":" << sampling_json
      << ",\"gates\":{\"sampling_cycle_reduction_min\":5.0,"
      << "\"sampling_ipc_err_max\":0.02,\"passed\":true}}\n";
  std::ofstream out(out_path, std::ios::binary);
  out << doc.str();
  if (!out) {
    std::fprintf(stderr, "bench_throughput: cannot write '%s'\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
