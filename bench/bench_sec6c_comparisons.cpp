// §VI-C: comparison with previously proposed GPU memory schedulers.
//
// Paper: SBWAS (Lakshminarayana et al.) with per-workload profiled alpha
// gains only +2.51% over GMC (best on bfs, +3.8%; little gain for the
// multi-bank/multi-controller apps).  WAFCFS (Yuan et al.) *loses* 11.2%
// versus GMC because in-order service finds almost no row hits on
// irregular access streams.  WG-W beats both.
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("§VI-C — SBWAS (profiled alpha) and WAFCFS vs GMC and WG-W",
         "SBWAS +2.51% (bfs best, +3.8%); WAFCFS -11.2%; WG-W +10.1%");
  print_config(opts);

  print_row("workload",
            {"GMC-IPC", "SBWAS", "alpha", "WAFCFS", "WG-W"});
  std::vector<double> sbwas_rel, wafcfs_rel, wgw_rel;
  for (const WorkloadProfile& w : irregular_suite()) {
    const double base = mean_ipc(w, SchedulerKind::kGmc, opts);

    // Profile alpha exactly as the paper does: try {0.25, 0.5, 0.75} and
    // keep the best-performing value per workload.
    double best_sbwas = 0.0;
    double best_alpha = 0.25;
    for (double alpha : {0.25, 0.5, 0.75}) {
      const double ipc =
          mean_ipc(w, SchedulerKind::kSbwas, opts,
                   [alpha](SimConfig& c) { c.sbwas.alpha = alpha; });
      if (ipc > best_sbwas) {
        best_sbwas = ipc;
        best_alpha = alpha;
      }
    }
    const double wafcfs = mean_ipc(w, SchedulerKind::kWafcfs, opts);
    const double wgw = mean_ipc(w, SchedulerKind::kWgW, opts);

    sbwas_rel.push_back(best_sbwas / base);
    wafcfs_rel.push_back(wafcfs / base);
    wgw_rel.push_back(wgw / base);
    print_row(w.name,
              {fixed(base, 2), fixed(best_sbwas / base, 3),
               fixed(best_alpha, 2), fixed(wafcfs / base, 3),
               fixed(wgw / base, 3)});
  }
  print_row("geomean", {"-", fixed(geomean(sbwas_rel), 3), "-",
                        fixed(geomean(wafcfs_rel), 3),
                        fixed(geomean(wgw_rel), 3)});
  std::printf("\npaper geomeans: SBWAS 1.025, WAFCFS 0.888, WG-W 1.101\n");
  return 0;
}
