// §VI-B: power and energy impact of warp-aware scheduling.
//
// Paper: WG-W has a 16% lower row-buffer hit rate than GMC, but because
// GDDR5 power is dominated by the I/O drivers, device power rises only
// ~1.8% (Micron-methodology power model with GDDR5 datasheet currents).
// Net system energy improves once the throughput gain is accounted for.
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("§VI-B — GDDR5 power impact of WG-W vs GMC",
         "row-hit rate -16% => device power +1.8%; net energy improves");
  print_config(opts);

  print_row("workload",
            {"hit(GMC)", "hit(WG-W)", "P(GMC)W", "P(WG-W)W", "dP", "dE"});
  std::vector<double> hit_ratio, power_ratio, energy_ratio;
  for (const WorkloadProfile& w : irregular_suite()) {
    const RunResult g = run_point(w, SchedulerKind::kGmc, opts);
    const RunResult ww = run_point(w, SchedulerKind::kWgW, opts);
    const double dp = ww.power.total() / g.power.total();
    // Energy per instruction: power x time / instructions; equal wall
    // time per run, so E/instr ratio = (P_w / P_g) / (IPC_w / IPC_g).
    const double de = dp / (ww.ipc / g.ipc);
    hit_ratio.push_back(safe_ratio(ww.row_hit_rate, g.row_hit_rate));
    power_ratio.push_back(dp);
    energy_ratio.push_back(de);
    print_row(w.name, {percent(g.row_hit_rate), percent(ww.row_hit_rate),
                       fixed(g.power.total(), 2), fixed(ww.power.total(), 2),
                       percent(dp - 1.0), percent(de - 1.0)});
  }
  print_row("geomean",
            {"-", "-", "-", "-", percent(geomean(power_ratio) - 1.0),
             percent(geomean(energy_ratio) - 1.0)});
  std::printf("\npaper: hit-rate ratio 0.84, device power +1.8%%, net "
              "energy negative (improved).  Our hit-rate ratio geomean: "
              "%s\n", fixed(geomean(hit_ratio), 3).c_str());

  // Power breakdown for one representative workload: the I/O dominance
  // that caps the activate-power penalty.
  const RunResult g = run_point(irregular_suite()[0], SchedulerKind::kGmc,
                                opts);
  std::printf("\nper-channel power breakdown (bfs, GMC): background %.2fW, "
              "activate %.2fW, read %.2fW, write %.2fW, refresh %.2fW, "
              "I/O %.2fW => total %.2fW\n",
              g.power.background, g.power.activate, g.power.read,
              g.power.write, g.power.refresh, g.power.io, g.power.total());
  return 0;
}
