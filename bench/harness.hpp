// Shared driver for the figure/table reproduction benches.
//
// Every bench binary follows the same pattern: run a matrix of
// (workload x scheduler) simulations, then print the rows/series the
// paper's figure reports.  Absolute numbers come from our simulator, so
// they will not match the authors' testbed; the *shape* (who wins, by
// roughly what factor, where crossovers fall) is the reproduction target
// and each bench prints the paper's reference values alongside.
//
// The figures with a named manifest (fig8, tab1, coord, device) run
// through the src/exp sweep engine via run_figure(): parallel execution
// with --jobs, structured JSON/CSV artifacts with --out/--csv, and
// golden-regression checking with --check.  The remaining benches use
// the serial run_point/mean_ipc helpers below.
//
// Common CLI (see Options::usage for the full list):
//   --cycles N    simulated DRAM command-clock cycles per run
//   --warmup N    warmup cycles excluded from IPC
//   --seed N      workload seed
//   --seeds N     independent trials averaged per point
//   --quick       1/4-length run for smoke testing
#pragma once

#include <string>
#include <vector>

#include "exp/point.hpp"
#include "sim/simulator.hpp"

namespace latdiv::bench {

/// Hook to adjust the SimConfig before construction (ablation knobs).
using ConfigHook = exp::ConfigHook;

struct Options {
  Cycle cycles = 50'000;
  Cycle warmup = 5'000;
  std::uint64_t seed = 1;
  std::uint32_t seeds = 1;  ///< independent trials averaged per point
  bool quick = false;       ///< 1/4-length smoke run
  /// Channel shards per simulated point (--shards / LATDIV_SHARDS).
  /// Results and artifact bytes are contractually identical at any value
  /// (SimConfig::shards); this is purely a wall-clock knob.
  std::uint32_t shards = 1;

  // Sweep-engine options (used by the manifest-backed benches; the
  // serial benches accept and ignore them).
  unsigned jobs = 1;        ///< executor threads
  std::string filter;       ///< substring filter on sweep point ids
  std::string out_json;     ///< write the JSON artifact here
  std::string out_csv;      ///< write the CSV artifact here
  std::string check;        ///< golden baseline to compare against
  bool timings = false;     ///< include wall_ms in the JSON artifact
  bool quiet = false;       ///< suppress per-point progress on stderr

  /// Parse argv.  Prints usage and exits 2 on an unknown flag or a
  /// malformed value; --help prints usage and exits 0.  --quick quarters
  /// cycles/warmup regardless of flag order.
  static Options parse(int argc, char** argv);

  /// The full usage string (every option documented).
  static const char* usage();
};

/// Run the named src/exp manifest with these options: parallel sweep,
/// figure table, optional artifacts.  Returns the process exit code.
int run_figure(const std::string& manifest, const Options& opts);

/// Run one (workload, scheduler) point (first seed only).
RunResult run_point(const WorkloadProfile& workload, SchedulerKind scheduler,
                    const Options& opts, const ConfigHook& hook = {});

/// Mean IPC across opts.seeds independent trials of one point.
double mean_ipc(const WorkloadProfile& workload, SchedulerKind scheduler,
                const Options& opts, const ConfigHook& hook = {});

/// Run a full matrix; results indexed [workload][scheduler-order-given].
std::vector<std::vector<RunResult>> run_matrix(
    const std::vector<WorkloadProfile>& workloads,
    const std::vector<SchedulerKind>& schedulers, const Options& opts,
    const ConfigHook& hook = {});

/// Print one table row of fixed-width cells.
void print_row(const std::string& head, const std::vector<std::string>& cells,
               int cell_width = 10);

/// Standard bench banner with the paper reference for this experiment.
void banner(const std::string& figure, const std::string& claim);

/// Table II configuration echo (paper's simulation parameters).
void print_config(const Options& opts);

}  // namespace latdiv::bench
