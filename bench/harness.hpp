// Shared driver for the figure/table reproduction benches.
//
// Every bench binary follows the same pattern: run a matrix of
// (workload x scheduler) simulations, then print the rows/series the
// paper's figure reports.  Absolute numbers come from our simulator, so
// they will not match the authors' testbed; the *shape* (who wins, by
// roughly what factor, where crossovers fall) is the reproduction target
// and each bench prints the paper's reference values alongside.
//
// Common CLI:
//   --cycles N    simulated DRAM command-clock cycles per run
//   --warmup N    warmup cycles excluded from IPC
//   --seed N      workload seed
//   --quick       1/4-length run for smoke testing
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace latdiv::bench {

struct Options {
  Cycle cycles = 50'000;
  Cycle warmup = 5'000;
  std::uint64_t seed = 1;
  std::uint32_t seeds = 1;  ///< independent trials averaged per point

  static Options parse(int argc, char** argv);
};

/// Hook to adjust the SimConfig before construction (ablation knobs).
using ConfigHook = std::function<void(SimConfig&)>;

/// Run one (workload, scheduler) point (first seed only).
RunResult run_point(const WorkloadProfile& workload, SchedulerKind scheduler,
                    const Options& opts, const ConfigHook& hook = {});

/// Mean IPC across opts.seeds independent trials of one point.
double mean_ipc(const WorkloadProfile& workload, SchedulerKind scheduler,
                const Options& opts, const ConfigHook& hook = {});

/// Run a full matrix; results indexed [workload][scheduler-order-given].
std::vector<std::vector<RunResult>> run_matrix(
    const std::vector<WorkloadProfile>& workloads,
    const std::vector<SchedulerKind>& schedulers, const Options& opts,
    const ConfigHook& hook = {});

/// Geometric mean of a positive series.
double geomean(const std::vector<double>& values);

/// Print one table row of fixed-width cells.
void print_row(const std::string& head, const std::vector<std::string>& cells,
               int cell_width = 10);

/// Standard bench banner with the paper reference for this experiment.
void banner(const std::string& figure, const std::string& claim);

/// Table II configuration echo (paper's simulation parameters).
void print_config(const Options& opts);

}  // namespace latdiv::bench
