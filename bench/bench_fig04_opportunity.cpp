// Fig. 4: room for improvement — the two idealised systems.
//
// Paper: "Perfect Coalescing" (every load = exactly one request) gives a
// 5x speedup over the baseline; "Zero Latency Divergence" (all of a
// warp's requests return in close succession after the first is serviced,
// bus bandwidth still modelled) gives +43% and is the upper bound for
// warp-aware DRAM scheduling.
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("Fig. 4 — Room for improvement (idealised systems)",
         "Perfect Coalescing ~5x; Zero Latency Divergence +43%");
  print_config(opts);

  print_row("workload", {"GMC-IPC", "PerfCoal", "ZeroDiv"});
  std::vector<double> pc_series;
  std::vector<double> zld_series;
  for (const WorkloadProfile& w : irregular_suite()) {
    const RunResult base = run_point(w, SchedulerKind::kGmc, opts);
    const RunResult pc =
        run_point(w, SchedulerKind::kGmc, opts,
                  [](SimConfig& c) { c.sm.perfect_coalescing = true; });
    const RunResult zld = run_point(w, SchedulerKind::kZld, opts);
    const double pc_x = pc.ipc / base.ipc;
    const double zld_x = zld.ipc / base.ipc;
    pc_series.push_back(pc_x);
    zld_series.push_back(zld_x);
    print_row(w.name,
              {fixed(base.ipc, 2), fixed(pc_x, 2) + "x", fixed(zld_x, 2) + "x"});
  }
  print_row("geomean", {"-", fixed(geomean(pc_series), 2) + "x",
                        fixed(geomean(zld_series), 2) + "x"});
  std::printf("\npaper: Perfect Coalescing ~5x, Zero Latency Divergence "
              "1.43x.\nnote: our synthetic workloads are more "
              "divergence-sensitive than the paper's binaries (no "
              "dependency-driven compute overlap), so the ZLD ceiling is "
              "higher here; see EXPERIMENTS.md.\n");
  return 0;
}
