// Fig. 9: effective main-memory latency experienced by warps — the time
// from issue until the *last* request of the warp's load returns.
//
// Paper: WG reduces the average effective latency by 9.1% and WG-M by
// 16.9% relative to GMC; WG-Bw/WG-W keep those gains while restoring
// bandwidth.
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("Fig. 9 — Effective main-memory latency of warps (ns)",
         "WG -9.1%, WG-M -16.9% vs GMC (average effective latency)");
  print_config(opts);

  const std::vector<SchedulerKind> scheds = {
      SchedulerKind::kGmc, SchedulerKind::kWg, SchedulerKind::kWgM,
      SchedulerKind::kWgBw, SchedulerKind::kWgW};
  print_row("workload", {"GMC", "WG", "WG-M", "WG-Bw", "WG-W"});
  std::vector<std::vector<double>> rel(scheds.size() - 1);
  for (const WorkloadProfile& w : irregular_suite()) {
    std::vector<std::string> cells;
    double base = 0.0;
    for (std::size_t s = 0; s < scheds.size(); ++s) {
      const RunResult r = run_point(w, scheds[s], opts);
      if (s == 0) base = r.effective_mem_latency_ns;
      cells.push_back(fixed(r.effective_mem_latency_ns, 0));
      if (s > 0 && base > 0.0) {
        rel[s - 1].push_back(r.effective_mem_latency_ns / base);
      }
    }
    print_row(w.name, cells);
  }
  std::vector<std::string> gm{"1.000"};
  for (auto& series : rel) gm.push_back(fixed(geomean(series), 3));
  print_row("relative (gm)", gm);
  std::printf("\npaper: WG 0.909, WG-M 0.831 relative to GMC\n");
  return 0;
}
