// Ablation: GDDR5 vs DDR3 device characteristics (paper §II-B).
//
// The paper motivates GDDR5 for GPUs by its higher bank count, bank
// groups with a short cross-group CAS gap, and a power-delivery network
// that sustains more frequent activations (lower tFAW relative to row
// service).  This bench swaps the device model under the same workloads
// and schedulers: the MERB table stretches on DDR3 (misses are harder to
// hide) and absolute throughput drops, while the warp-aware gains
// persist on both devices.
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"
#include "core/merb.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("Ablation — GDDR5 vs DDR3-1600 device model",
         "§II-B: bank groups + low tFAW make GDDR5 suit frequent activates");
  print_config(opts);

  // MERB tables side by side.
  const MerbTable merb_g(DramTiming::from(gddr5_params()));
  const MerbTable merb_d(DramTiming::from(ddr3_1600_params()));
  std::printf("\nMERB tables (banks -> transfers needed to hide a miss):\n");
  std::printf("%-8s", "banks");
  for (std::uint32_t b = 1; b <= 8; ++b) std::printf("%6u", b);
  std::printf("\n%-8s", "GDDR5");
  for (std::uint32_t b = 1; b <= 8; ++b) std::printf("%6u", merb_g.value(b));
  std::printf("\n%-8s", "DDR3");
  for (std::uint32_t b = 1; b <= 8; ++b) std::printf("%6u", merb_d.value(b));
  std::printf("\n\n");

  // IPC is per *core cycle*, and the core clock is derived from the
  // device command clock — compare instructions per microsecond so the
  // two devices are on the same time base.
  print_row("workload", {"G5 Mi/s", "G5-WGW", "gain", "D3 Mi/s", "D3-WGW",
                         "gain"});
  std::vector<double> g5_gain, d3_gain, dev_ratio;
  const auto ddr3_hook = [](SimConfig& c) { c.dram = ddr3_1600_params(); };
  const double g5_core_ghz = 1.0 / (2.0 * gddr5_params().tck_ns);
  const double d3_core_ghz = 1.0 / (2.0 * ddr3_1600_params().tck_ns);
  for (const char* name : {"bfs", "nw", "sssp", "spmv"}) {
    const WorkloadProfile w = profile_by_name(name);
    const double g5g = mean_ipc(w, SchedulerKind::kGmc, opts) * g5_core_ghz;
    const double g5w = mean_ipc(w, SchedulerKind::kWgW, opts) * g5_core_ghz;
    const double d3g =
        mean_ipc(w, SchedulerKind::kGmc, opts, ddr3_hook) * d3_core_ghz;
    const double d3w =
        mean_ipc(w, SchedulerKind::kWgW, opts, ddr3_hook) * d3_core_ghz;
    g5_gain.push_back(g5w / g5g);
    d3_gain.push_back(d3w / d3g);
    dev_ratio.push_back(g5g / d3g);
    print_row(name, {fixed(g5g * 1e3, 0), fixed(g5w * 1e3, 0),
                     fixed(g5w / g5g, 3), fixed(d3g * 1e3, 0),
                     fixed(d3w * 1e3, 0), fixed(d3w / d3g, 3)});
  }
  print_row("geomean", {"-", "-", fixed(geomean(g5_gain), 3), "-", "-",
                        fixed(geomean(d3_gain), 3)});
  std::printf("\nGDDR5 delivers %.2fx DDR3's throughput at equal core IPC "
              "pressure (longer DDR3 bursts, fewer banks, tighter activate "
              "budget); warp-aware gains persist on both devices.\n",
              geomean(dev_ratio));
  return 0;
}
