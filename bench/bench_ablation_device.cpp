// Ablation: GDDR5 vs DDR3 device characteristics (paper §II-B).
//
// The paper motivates GDDR5 for GPUs by its higher bank count, bank
// groups with a short cross-group CAS gap, and a power-delivery network
// that sustains more frequent activations (lower tFAW relative to row
// service).  The sweep swaps the device model under the same workloads
// and schedulers; IPC is per *core cycle* and the core clock is derived
// from the device command clock, so the manifest compares instructions
// per microsecond to put both devices on the same time base.
//
// Thin wrapper over the src/exp "device" manifest; `latdiv-sweep device`
// runs the same sweep.
#include "bench/harness.hpp"

int main(int argc, char** argv) {
  return latdiv::bench::run_figure(
      "device", latdiv::bench::Options::parse(argc, argv));
}
