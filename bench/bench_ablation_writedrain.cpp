// Ablation: the WG-W trigger point (§IV-E).
//
// WG-W re-prioritises unit-remaining warp-groups once the write queue is
// within `wq_guard` entries of its high watermark (paper: 8).  guard=0
// never triggers before the drain (too late to help); a huge guard keeps
// the override on permanently (degrades BASJF to smallest-first).
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("Ablation — WG-W write-drain guard (paper value: 8)",
         "prioritise unit-remaining groups just before a drain begins");
  print_config(opts);

  const std::vector<std::uint32_t> guards = {0, 4, 8, 16, 32};
  std::vector<std::string> head;
  for (auto g : guards) head.push_back("guard=" + fixed(g, 0));
  print_row("workload", head);

  // The write-heavy benchmarks are where WG-W acts.
  std::vector<std::vector<double>> cols(guards.size());
  for (const char* name : {"nw", "SS", "sad", "PVC"}) {
    const WorkloadProfile w = profile_by_name(name);
    std::vector<std::string> cells;
    for (std::size_t i = 0; i < guards.size(); ++i) {
      const std::uint32_t g = guards[i];
      const double ipc = mean_ipc(w, SchedulerKind::kWgW, opts,
                                  [g](SimConfig& c) { c.wg.wq_guard = g; });
      cols[i].push_back(ipc);
      cells.push_back(fixed(ipc, 3));
    }
    print_row(name, cells);
  }
  std::vector<std::string> gm;
  for (auto& col : cols) gm.push_back(fixed(geomean(col), 3));
  print_row("geomean-IPC", gm);
  return 0;
}
