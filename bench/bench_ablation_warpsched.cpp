// Ablation: SM warp scheduling policy (GTO vs loose round-robin).
//
// The paper's divergence problem lives at the memory controller, but how
// the SM *issues* warps shapes the request stream the controller sees:
// GTO concentrates issue on few warps (deep per-warp bursts, fewer
// concurrently-divergent warps), LRR spreads issue across all warps
// (many half-finished warp-groups in flight).  Warp-aware scheduling
// should help under both; this quantifies the interaction.
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("Ablation — SM warp scheduler (GTO vs LRR) x memory scheduler",
         "warp-aware DRAM scheduling helps under either SM issue policy");
  print_config(opts);

  const auto lrr = [](SimConfig& c) {
    c.sm.warp_sched = WarpSchedPolicy::kLrr;
  };
  print_row("workload", {"GTO-GMC", "GTO-WGW", "gain", "LRR-GMC", "LRR-WGW",
                         "gain"});
  std::vector<double> gto_gain, lrr_gain;
  for (const char* name : {"bfs", "cfd", "SS", "sssp", "sad"}) {
    const WorkloadProfile w = profile_by_name(name);
    const double gg = mean_ipc(w, SchedulerKind::kGmc, opts);
    const double gw = mean_ipc(w, SchedulerKind::kWgW, opts);
    const double lg = mean_ipc(w, SchedulerKind::kGmc, opts, lrr);
    const double lw = mean_ipc(w, SchedulerKind::kWgW, opts, lrr);
    gto_gain.push_back(gw / gg);
    lrr_gain.push_back(lw / lg);
    print_row(name, {fixed(gg, 2), fixed(gw, 2), fixed(gw / gg, 3),
                     fixed(lg, 2), fixed(lw, 2), fixed(lw / lg, 3)});
  }
  print_row("geomean", {"-", "-", fixed(geomean(gto_gain), 3), "-", "-",
                        fixed(geomean(lrr_gain), 3)});
  return 0;
}
