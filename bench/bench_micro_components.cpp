// Micro-benchmarks (google-benchmark): hot-path costs of the simulator's
// building blocks.  These bound the host-side cost per simulated cycle and
// catch performance regressions in the scheduler inner loops.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.hpp"
#include "core/policy_wg.hpp"
#include "dram/channel.hpp"
#include "gpu/coalescer.hpp"
#include "mc/controller.hpp"
#include "mc/policy_gmc.hpp"
#include "mem/address_map.hpp"
#include "sim/simulator.hpp"

namespace latdiv {
namespace {

void BM_AddressDecode(benchmark::State& state) {
  const AddressMap amap{AddressMapConfig{}};
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(amap.decode(rng.next() & 0xFFFFFFFFFull));
  }
}
BENCHMARK(BM_AddressDecode);

void BM_ChannelCanIssue(benchmark::State& state) {
  DramParams p;
  p.refresh_enabled = false;
  Channel ch(DramTiming::from(p));
  ch.issue({DramCmd::kActivate, 0, 1}, 1);
  const DramCommand rd{DramCmd::kRead, 0, 1};
  Cycle now = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.can_issue(rd, now));
    ++now;
  }
}
BENCHMARK(BM_ChannelCanIssue);

void BM_CoalesceDivergent(benchmark::State& state) {
  Coalescer coal;
  Rng rng(2);
  WarpInstr instr;
  instr.kind = WarpInstr::Kind::kLoad;
  instr.active_lanes = 32;
  for (auto& a : instr.lane_addr) a = rng.next() & 0xFFFFFF80;
  std::vector<Addr> out;
  for (auto _ : state) {
    coal.coalesce(instr, out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_CoalesceDivergent);

void BM_ControllerTick(benchmark::State& state) {
  DramParams p;
  p.refresh_enabled = false;
  const DramTiming t = DramTiming::from(p);
  MemoryController mc(0, McConfig{}, t, std::make_unique<GmcPolicy>(),
                      nullptr);
  Rng rng(3);
  Cycle now = 0;
  for (auto _ : state) {
    if (mc.can_accept_read() && rng.chance(0.3)) {
      MemRequest r;
      r.loc.bank = static_cast<BankId>(rng.below(16));
      r.loc.row = static_cast<RowId>(rng.below(64));
      r.tag.instr = 1 + rng.below(512);
      mc.push(r, now);
    }
    mc.tick(now);
    ++now;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(now));
}
BENCHMARK(BM_ControllerTick);

void BM_SimulatorCycle(benchmark::State& state) {
  SimConfig cfg;
  cfg.workload = profile_by_name("sssp");
  cfg.scheduler = SchedulerKind::kWgW;
  cfg.max_cycles = 1;  // stepped manually
  Simulator sim(cfg);
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.now()));
}
BENCHMARK(BM_SimulatorCycle);

}  // namespace
}  // namespace latdiv

BENCHMARK_MAIN();
