// Ablation: the WG score constants (§IV-B1).
//
// The paper assigns 1 to a predicted row hit and 3 to a miss because the
// array latencies are 12ns (tCAS) vs 36ns (tRP+tRCD+tCAS).  This sweep
// varies the miss score to show the scheduler is calibrated, not lucky:
// miss=1 collapses BASJF to request counting (the paper's §VI-C1 argument
// against SBWAS), very large values over-penalise misses.
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("Ablation — WG row-miss score (paper value: 3)",
         "score ratio approximates the 36ns/12ns miss/hit latency ratio");
  print_config(opts);

  const std::vector<std::uint32_t> miss_scores = {1, 2, 3, 5, 9};
  std::vector<std::string> head;
  for (auto m : miss_scores) head.push_back("miss=" + fixed(m, 0));
  print_row("workload", head);

  std::vector<std::vector<double>> cols(miss_scores.size());
  for (const WorkloadProfile& w : irregular_suite()) {
    std::vector<std::string> cells;
    for (std::size_t i = 0; i < miss_scores.size(); ++i) {
      const std::uint32_t m = miss_scores[i];
      const double ipc = mean_ipc(w, SchedulerKind::kWgW, opts,
                                  [m](SimConfig& c) { c.wg.score_miss = m; });
      cols[i].push_back(ipc);
      cells.push_back(fixed(ipc, 3));
    }
    print_row(w.name, cells);
  }
  std::vector<std::string> gm;
  for (auto& col : cols) gm.push_back(fixed(geomean(col), 3));
  print_row("geomean-IPC", gm);
  std::printf("\nexpect: a plateau around miss=3 (the latency-calibrated "
              "value); miss=1 (pure request counting) trails.\n");
  return 0;
}
