// Fig. 11: DRAM data-bus utilization under the different schedulers.
//
// Paper: warp-group prioritisation (WG/WG-M) interrupts row-hit streams
// and costs bandwidth on bfs, PVC and bh; the MERB policy (WG-Bw)
// recovers it — improving WG-M's utilization by more than 14% — by
// overlapping each admitted row-miss with row-hit transfers in other
// banks, while only marginally disturbing the latency-divergence gains.
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("Fig. 11 — DRAM bandwidth utilization by scheduler",
         "WG/WG-M lose utilization vs GMC on some apps; WG-Bw recovers >14%");
  print_config(opts);

  const std::vector<SchedulerKind> scheds = {
      SchedulerKind::kGmc, SchedulerKind::kWg, SchedulerKind::kWgM,
      SchedulerKind::kWgBw, SchedulerKind::kWgW};
  print_row("workload", {"GMC", "WG", "WG-M", "WG-Bw", "WG-W", "defer"});
  for (const WorkloadProfile& w : irregular_suite()) {
    std::vector<std::string> cells;
    std::uint64_t deferrals = 0;
    for (std::size_t s = 0; s < scheds.size(); ++s) {
      const RunResult r = run_point(w, scheds[s], opts);
      cells.push_back(percent(r.bandwidth_utilization));
      if (scheds[s] == SchedulerKind::kWgBw) deferrals = r.wg_merb_deferrals;
    }
    cells.push_back(fixed(static_cast<double>(deferrals), 0));
    print_row(w.name, cells);
  }
  std::printf(
      "\nnote: utilization here is demand-coupled (higher IPC pushes more "
      "traffic).  The paper's supply-side effect — WG-M interrupting row "
      "streams, WG-Bw deferring misses behind MERB-sized hit runs — shows "
      "in the per-bank insertion behaviour (defer column) and in the "
      "bench_ablation_merb sweep.\n");
  return 0;
}
