// Ablation: coordination-network delivery latency (§IV-C).
//
// The paper assumes a dedicated 30x16-bit all-to-all network carrying one
// 32-bit message per warp-group selection.  This sweep varies the
// delivery latency from "free" (1 cycle) to slower than the typical
// selection turnaround, showing how stale scores blunt WG-M.
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("Ablation — WG-M coordination latency (paper: ~2 flits on 16-bit "
         "links; we default to 4 cycles)",
         "stale remote scores reduce the laggard boosts that land in time");
  print_config(opts);

  const std::vector<Cycle> latencies = {1, 4, 16, 64, 256};
  std::vector<std::string> head;
  for (auto l : latencies) head.push_back("lat=" + fixed(l, 0));
  head.push_back("WG(base)");
  print_row("workload", head);

  // The multi-controller apps are where coordination can matter.
  std::vector<std::vector<double>> cols(latencies.size());
  for (const char* name : {"cfd", "sp", "sssp", "spmv"}) {
    const WorkloadProfile w = profile_by_name(name);
    std::vector<std::string> cells;
    for (std::size_t i = 0; i < latencies.size(); ++i) {
      const Cycle l = latencies[i];
      const double ipc =
          mean_ipc(w, SchedulerKind::kWgM, opts,
                   [l](SimConfig& c) { c.coordination_latency = l; });
      cols[i].push_back(ipc);
      cells.push_back(fixed(ipc, 3));
    }
    cells.push_back(fixed(mean_ipc(w, SchedulerKind::kWg, opts), 3));
    print_row(name, cells);
  }
  std::vector<std::string> gm;
  for (auto& col : cols) gm.push_back(fixed(geomean(col), 3));
  gm.push_back("-");
  print_row("geomean-IPC", gm);
  return 0;
}
