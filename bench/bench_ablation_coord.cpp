// Ablation: coordination-network delivery latency (§IV-C).
//
// The paper assumes a dedicated 30x16-bit all-to-all network carrying one
// 32-bit message per warp-group selection.  This sweep varies the
// delivery latency from "free" (1 cycle) to slower than the typical
// selection turnaround, showing how stale scores blunt WG-M.
//
// Thin wrapper over the src/exp "coord" manifest; `latdiv-sweep coord`
// runs the same sweep.
#include "bench/harness.hpp"

int main(int argc, char** argv) {
  return latdiv::bench::run_figure(
      "coord", latdiv::bench::Options::parse(argc, argv));
}
