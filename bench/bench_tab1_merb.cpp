// Table I: MERB values for GDDR5 timings, computed from the formula in
// §IV-D exactly as the boot-time table would be.
//
// Paper:  banks   1   2   3   4   5   6-16
//         MERB   31  20  10   7   5   5
#include <cstdio>

#include "bench/harness.hpp"
#include "core/merb.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  (void)Options::parse(argc, argv);
  banner("Table I — MERB table for GDDR5",
         "banks {1,2,3,4,5,6-16} -> MERB {31,20,10,7,5,5}");

  const DramTiming t = DramTiming::from(DramParams{});
  const MerbTable merb(t);
  std::printf("timings (cycles @ tCK=0.667ns): tRTP=%llu tRP=%llu tRCD=%llu "
              "tBURST=%llu tRRD=%llu tFAW=%llu\n",
              static_cast<unsigned long long>(t.trtp),
              static_cast<unsigned long long>(t.trp),
              static_cast<unsigned long long>(t.trcd),
              static_cast<unsigned long long>(t.tburst),
              static_cast<unsigned long long>(t.trrd),
              static_cast<unsigned long long>(t.tfaw));

  std::printf("\n%-8s %-8s %-8s\n", "banks", "MERB", "paper");
  const std::uint32_t paper[] = {31, 20, 10, 7, 5};
  bool all_match = true;
  for (std::uint32_t b = 1; b <= 16; ++b) {
    const std::uint32_t expect = b <= 5 ? paper[b - 1] : 5;
    const std::uint32_t got = merb.value(b);
    std::printf("%-8u %-8u %-8u%s\n", b, got, expect,
                got == expect ? "" : "  <-- MISMATCH");
    all_match &= got == expect;
  }
  std::printf("\n%s\n", all_match ? "Table I reproduced exactly."
                                  : "Table I MISMATCH — check timings.");
  return all_match ? 0 : 1;
}
