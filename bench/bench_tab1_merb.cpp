// Table I: MERB values for GDDR5 timings, computed from the formula in
// §IV-D exactly as the boot-time table would be.
//
// Paper:  banks   1   2   3   4   5   6-16
//         MERB   31  20  10   7   5   5
//
// Thin wrapper over the src/exp "tab1" manifest (analytic points, no
// simulation).  The MERB column throws on any mismatch with the paper's
// values, which the sweep engine reports as a failed point and a
// nonzero exit code — same contract as the old hand-rolled check.
#include "bench/harness.hpp"

int main(int argc, char** argv) {
  return latdiv::bench::run_figure(
      "tab1", latdiv::bench::Options::parse(argc, argv));
}
