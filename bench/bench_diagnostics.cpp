// Diagnostics: per-(workload, scheduler) operating point.  Not a paper
// figure — this is the calibration and sanity view used to verify the
// simulator sits in a regime comparable to the paper's (§III statistics,
// utilization levels, queue behaviour) before reading the figure benches.
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("Diagnostics — simulator operating point per workload/scheduler",
         "sanity view (not a paper figure)");
  print_config(opts);

  const std::vector<SchedulerKind> scheds = {
      SchedulerKind::kGmc, SchedulerKind::kWg, SchedulerKind::kWgM,
      SchedulerKind::kWgBw, SchedulerKind::kWgW};

  for (const WorkloadProfile& w : irregular_suite()) {
    std::printf("\n%s:\n", w.name.c_str());
    print_row("scheduler",
              {"IPC", "util", "rowhit", "lat_ns", "gap_ns", "ch/warp",
               "defer", "coord", "L2hit"});
    for (SchedulerKind s : scheds) {
      const RunResult r = run_point(w, s, opts);
      print_row(r.scheduler,
                {fixed(r.ipc, 2), percent(r.bandwidth_utilization),
                 percent(r.row_hit_rate),
                 fixed(r.effective_mem_latency_ns, 0),
                 fixed(r.divergence_gap_ns, 0),
                 fixed(r.tracker.channels_per_load.mean(), 2),
                 fixed(static_cast<double>(r.wg_merb_deferrals), 0),
                 fixed(static_cast<double>(r.coord_messages / 1000), 0),
                 percent(r.l2_hit_rate)});
    }
  }
  return 0;
}
