// Fig. 12: write intensity and the warp-groups stranded by write drains.
//
// Paper: plots (a) the fraction of DRAM traffic that is writes and
// (b) the fraction of warp-groups stalled behind a write drain that are
// unit-sized or orphaned (1-2 requests remaining).  WG-W helps most where
// both are high — nw and SS — by serving unit-remaining groups before the
// drain begins; it costs no bandwidth.
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace latdiv;
using namespace latdiv::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  banner("Fig. 12 — Write intensity and drain-stranded warp-groups",
         "WG-W wins where write intensity and small-group fraction are high "
         "(nw, SS)");
  print_config(opts);

  print_row("workload", {"writes%", "small-grp%", "WG-W/WG-Bw", "wa-sel"});
  for (const WorkloadProfile& w : irregular_suite()) {
    const RunResult bw = run_point(w, SchedulerKind::kWgBw, opts);
    const RunResult ww = run_point(w, SchedulerKind::kWgW, opts);
    print_row(w.name,
              {percent(bw.write_intensity),
               percent(bw.drain_small_group_frac), fixed(ww.ipc / bw.ipc, 3),
               fixed(static_cast<double>(ww.wg_writeaware_selections), 0)});
  }
  std::printf("\nexpect: the write-heavy rows (nw, SS, sad) show the "
              "highest write intensity; WG-W's gain concentrates there.\n");
  return 0;
}
