# Empty dependencies file for test_channel_properties.
# This may be replaced when dependencies are built.
