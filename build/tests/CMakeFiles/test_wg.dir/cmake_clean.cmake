file(REMOVE_RECURSE
  "CMakeFiles/test_wg.dir/test_wg.cpp.o"
  "CMakeFiles/test_wg.dir/test_wg.cpp.o.d"
  "test_wg"
  "test_wg.pdb"
  "test_wg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
