# Empty compiler generated dependencies file for test_wg.
# This may be replaced when dependencies are built.
