# Empty compiler generated dependencies file for test_dram_timing.
# This may be replaced when dependencies are built.
