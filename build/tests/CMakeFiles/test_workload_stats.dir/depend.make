# Empty dependencies file for test_workload_stats.
# This may be replaced when dependencies are built.
