file(REMOVE_RECURSE
  "CMakeFiles/test_workload_stats.dir/test_workload_stats.cpp.o"
  "CMakeFiles/test_workload_stats.dir/test_workload_stats.cpp.o.d"
  "test_workload_stats"
  "test_workload_stats.pdb"
  "test_workload_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
