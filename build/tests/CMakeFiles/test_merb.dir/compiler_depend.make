# Empty compiler generated dependencies file for test_merb.
# This may be replaced when dependencies are built.
