file(REMOVE_RECURSE
  "CMakeFiles/test_merb.dir/test_merb.cpp.o"
  "CMakeFiles/test_merb.dir/test_merb.cpp.o.d"
  "test_merb"
  "test_merb.pdb"
  "test_merb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
