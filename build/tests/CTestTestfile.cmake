# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_bounded_queue[1]_include.cmake")
include("/root/repo/build/tests/test_address_map[1]_include.cmake")
include("/root/repo/build/tests/test_dram_timing[1]_include.cmake")
include("/root/repo/build/tests/test_channel[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_merb[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_mshr[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_wg[1]_include.cmake")
include("/root/repo/build/tests/test_coordination[1]_include.cmake")
include("/root/repo/build/tests/test_crossbar[1]_include.cmake")
include("/root/repo/build/tests/test_coalescer[1]_include.cmake")
include("/root/repo/build/tests/test_tracker[1]_include.cmake")
include("/root/repo/build/tests/test_generator[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_sm[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_ideal[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_channel_properties[1]_include.cmake")
include("/root/repo/build/tests/test_workload_stats[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
