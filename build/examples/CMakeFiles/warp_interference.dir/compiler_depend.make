# Empty compiler generated dependencies file for warp_interference.
# This may be replaced when dependencies are built.
