file(REMOVE_RECURSE
  "CMakeFiles/warp_interference.dir/warp_interference.cpp.o"
  "CMakeFiles/warp_interference.dir/warp_interference.cpp.o.d"
  "warp_interference"
  "warp_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warp_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
