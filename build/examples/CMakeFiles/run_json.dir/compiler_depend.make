# Empty compiler generated dependencies file for run_json.
# This may be replaced when dependencies are built.
