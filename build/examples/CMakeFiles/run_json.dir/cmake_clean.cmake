file(REMOVE_RECURSE
  "CMakeFiles/run_json.dir/run_json.cpp.o"
  "CMakeFiles/run_json.dir/run_json.cpp.o.d"
  "run_json"
  "run_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
