# Empty dependencies file for bench_fig08_performance.
# This may be replaced when dependencies are built.
