# Empty compiler generated dependencies file for bench_sec6a_regular.
# This may be replaced when dependencies are built.
