file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6a_regular.dir/bench_sec6a_regular.cpp.o"
  "CMakeFiles/bench_sec6a_regular.dir/bench_sec6a_regular.cpp.o.d"
  "bench_sec6a_regular"
  "bench_sec6a_regular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6a_regular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
