# Empty compiler generated dependencies file for bench_ablation_writedrain.
# This may be replaced when dependencies are built.
