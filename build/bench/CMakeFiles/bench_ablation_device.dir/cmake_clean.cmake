file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_device.dir/bench_ablation_device.cpp.o"
  "CMakeFiles/bench_ablation_device.dir/bench_ablation_device.cpp.o.d"
  "bench_ablation_device"
  "bench_ablation_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
