# Empty compiler generated dependencies file for bench_ablation_coord.
# This may be replaced when dependencies are built.
