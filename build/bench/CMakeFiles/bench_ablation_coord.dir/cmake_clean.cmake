file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_coord.dir/bench_ablation_coord.cpp.o"
  "CMakeFiles/bench_ablation_coord.dir/bench_ablation_coord.cpp.o.d"
  "bench_ablation_coord"
  "bench_ablation_coord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_coord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
