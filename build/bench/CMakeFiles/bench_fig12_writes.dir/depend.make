# Empty dependencies file for bench_fig12_writes.
# This may be replaced when dependencies are built.
