file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_merb.dir/bench_ablation_merb.cpp.o"
  "CMakeFiles/bench_ablation_merb.dir/bench_ablation_merb.cpp.o.d"
  "bench_ablation_merb"
  "bench_ablation_merb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_merb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
