# Empty dependencies file for bench_ablation_merb.
# This may be replaced when dependencies are built.
