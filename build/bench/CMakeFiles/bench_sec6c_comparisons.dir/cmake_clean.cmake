file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6c_comparisons.dir/bench_sec6c_comparisons.cpp.o"
  "CMakeFiles/bench_sec6c_comparisons.dir/bench_sec6c_comparisons.cpp.o.d"
  "bench_sec6c_comparisons"
  "bench_sec6c_comparisons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6c_comparisons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
