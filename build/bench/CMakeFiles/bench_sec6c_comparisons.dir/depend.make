# Empty dependencies file for bench_sec6c_comparisons.
# This may be replaced when dependencies are built.
