
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/harness.cpp" "bench/CMakeFiles/latdiv_bench_harness.dir/harness.cpp.o" "gcc" "bench/CMakeFiles/latdiv_bench_harness.dir/harness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/latdiv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/latdiv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/latdiv_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/latdiv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/icnt/CMakeFiles/latdiv_icnt.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/latdiv_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/latdiv_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/latdiv_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/latdiv_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/latdiv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
