file(REMOVE_RECURSE
  "CMakeFiles/latdiv_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/latdiv_bench_harness.dir/harness.cpp.o.d"
  "liblatdiv_bench_harness.a"
  "liblatdiv_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latdiv_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
