file(REMOVE_RECURSE
  "liblatdiv_bench_harness.a"
)
