# Empty dependencies file for latdiv_bench_harness.
# This may be replaced when dependencies are built.
