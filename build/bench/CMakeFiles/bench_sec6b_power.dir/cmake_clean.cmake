file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6b_power.dir/bench_sec6b_power.cpp.o"
  "CMakeFiles/bench_sec6b_power.dir/bench_sec6b_power.cpp.o.d"
  "bench_sec6b_power"
  "bench_sec6b_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6b_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
