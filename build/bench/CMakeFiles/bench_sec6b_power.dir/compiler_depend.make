# Empty compiler generated dependencies file for bench_sec6b_power.
# This may be replaced when dependencies are built.
