# Empty compiler generated dependencies file for bench_fig10_divergence_sched.
# This may be replaced when dependencies are built.
