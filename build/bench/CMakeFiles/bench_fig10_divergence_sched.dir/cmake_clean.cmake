file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_divergence_sched.dir/bench_fig10_divergence_sched.cpp.o"
  "CMakeFiles/bench_fig10_divergence_sched.dir/bench_fig10_divergence_sched.cpp.o.d"
  "bench_fig10_divergence_sched"
  "bench_fig10_divergence_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_divergence_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
