file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_warpsched.dir/bench_ablation_warpsched.cpp.o"
  "CMakeFiles/bench_ablation_warpsched.dir/bench_ablation_warpsched.cpp.o.d"
  "bench_ablation_warpsched"
  "bench_ablation_warpsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_warpsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
