# Empty compiler generated dependencies file for bench_ablation_warpsched.
# This may be replaced when dependencies are built.
