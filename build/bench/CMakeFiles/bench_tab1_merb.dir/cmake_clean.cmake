file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_merb.dir/bench_tab1_merb.cpp.o"
  "CMakeFiles/bench_tab1_merb.dir/bench_tab1_merb.cpp.o.d"
  "bench_tab1_merb"
  "bench_tab1_merb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_merb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
