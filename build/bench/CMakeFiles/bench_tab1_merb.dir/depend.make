# Empty dependencies file for bench_tab1_merb.
# This may be replaced when dependencies are built.
