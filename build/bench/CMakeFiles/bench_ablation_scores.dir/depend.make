# Empty dependencies file for bench_ablation_scores.
# This may be replaced when dependencies are built.
