file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scores.dir/bench_ablation_scores.cpp.o"
  "CMakeFiles/bench_ablation_scores.dir/bench_ablation_scores.cpp.o.d"
  "bench_ablation_scores"
  "bench_ablation_scores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
