file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_shared.dir/bench_extension_shared.cpp.o"
  "CMakeFiles/bench_extension_shared.dir/bench_extension_shared.cpp.o.d"
  "bench_extension_shared"
  "bench_extension_shared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
