# Empty dependencies file for bench_extension_shared.
# This may be replaced when dependencies are built.
