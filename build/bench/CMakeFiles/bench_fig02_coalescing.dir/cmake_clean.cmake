file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_coalescing.dir/bench_fig02_coalescing.cpp.o"
  "CMakeFiles/bench_fig02_coalescing.dir/bench_fig02_coalescing.cpp.o.d"
  "bench_fig02_coalescing"
  "bench_fig02_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
