# Empty compiler generated dependencies file for bench_fig02_coalescing.
# This may be replaced when dependencies are built.
