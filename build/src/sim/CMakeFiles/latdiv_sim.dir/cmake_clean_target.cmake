file(REMOVE_RECURSE
  "liblatdiv_sim.a"
)
