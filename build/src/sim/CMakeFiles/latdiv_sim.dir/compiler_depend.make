# Empty compiler generated dependencies file for latdiv_sim.
# This may be replaced when dependencies are built.
