file(REMOVE_RECURSE
  "CMakeFiles/latdiv_sim.dir/simulator.cpp.o"
  "CMakeFiles/latdiv_sim.dir/simulator.cpp.o.d"
  "liblatdiv_sim.a"
  "liblatdiv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latdiv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
