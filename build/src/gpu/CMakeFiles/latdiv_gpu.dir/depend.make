# Empty dependencies file for latdiv_gpu.
# This may be replaced when dependencies are built.
