file(REMOVE_RECURSE
  "CMakeFiles/latdiv_gpu.dir/coalescer.cpp.o"
  "CMakeFiles/latdiv_gpu.dir/coalescer.cpp.o.d"
  "CMakeFiles/latdiv_gpu.dir/partition.cpp.o"
  "CMakeFiles/latdiv_gpu.dir/partition.cpp.o.d"
  "CMakeFiles/latdiv_gpu.dir/sm.cpp.o"
  "CMakeFiles/latdiv_gpu.dir/sm.cpp.o.d"
  "CMakeFiles/latdiv_gpu.dir/tracker.cpp.o"
  "CMakeFiles/latdiv_gpu.dir/tracker.cpp.o.d"
  "liblatdiv_gpu.a"
  "liblatdiv_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latdiv_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
