file(REMOVE_RECURSE
  "liblatdiv_gpu.a"
)
