# Empty compiler generated dependencies file for latdiv_dram.
# This may be replaced when dependencies are built.
