file(REMOVE_RECURSE
  "CMakeFiles/latdiv_dram.dir/channel.cpp.o"
  "CMakeFiles/latdiv_dram.dir/channel.cpp.o.d"
  "CMakeFiles/latdiv_dram.dir/params.cpp.o"
  "CMakeFiles/latdiv_dram.dir/params.cpp.o.d"
  "CMakeFiles/latdiv_dram.dir/power.cpp.o"
  "CMakeFiles/latdiv_dram.dir/power.cpp.o.d"
  "liblatdiv_dram.a"
  "liblatdiv_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latdiv_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
