file(REMOVE_RECURSE
  "liblatdiv_dram.a"
)
