file(REMOVE_RECURSE
  "CMakeFiles/latdiv_mem.dir/address_map.cpp.o"
  "CMakeFiles/latdiv_mem.dir/address_map.cpp.o.d"
  "liblatdiv_mem.a"
  "liblatdiv_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latdiv_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
