file(REMOVE_RECURSE
  "liblatdiv_mem.a"
)
