# Empty compiler generated dependencies file for latdiv_mem.
# This may be replaced when dependencies are built.
