file(REMOVE_RECURSE
  "liblatdiv_icnt.a"
)
