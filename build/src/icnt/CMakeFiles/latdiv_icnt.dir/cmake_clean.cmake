file(REMOVE_RECURSE
  "CMakeFiles/latdiv_icnt.dir/crossbar.cpp.o"
  "CMakeFiles/latdiv_icnt.dir/crossbar.cpp.o.d"
  "liblatdiv_icnt.a"
  "liblatdiv_icnt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latdiv_icnt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
