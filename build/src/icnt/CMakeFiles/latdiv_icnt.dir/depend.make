# Empty dependencies file for latdiv_icnt.
# This may be replaced when dependencies are built.
