# Empty dependencies file for latdiv_workload.
# This may be replaced when dependencies are built.
