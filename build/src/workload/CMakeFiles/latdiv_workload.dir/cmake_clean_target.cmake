file(REMOVE_RECURSE
  "liblatdiv_workload.a"
)
