file(REMOVE_RECURSE
  "CMakeFiles/latdiv_workload.dir/generator.cpp.o"
  "CMakeFiles/latdiv_workload.dir/generator.cpp.o.d"
  "CMakeFiles/latdiv_workload.dir/profile.cpp.o"
  "CMakeFiles/latdiv_workload.dir/profile.cpp.o.d"
  "CMakeFiles/latdiv_workload.dir/trace.cpp.o"
  "CMakeFiles/latdiv_workload.dir/trace.cpp.o.d"
  "liblatdiv_workload.a"
  "liblatdiv_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latdiv_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
