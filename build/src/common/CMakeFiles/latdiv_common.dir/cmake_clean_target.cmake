file(REMOVE_RECURSE
  "liblatdiv_common.a"
)
