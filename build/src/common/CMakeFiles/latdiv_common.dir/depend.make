# Empty dependencies file for latdiv_common.
# This may be replaced when dependencies are built.
