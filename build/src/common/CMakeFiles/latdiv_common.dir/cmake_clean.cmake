file(REMOVE_RECURSE
  "CMakeFiles/latdiv_common.dir/stats.cpp.o"
  "CMakeFiles/latdiv_common.dir/stats.cpp.o.d"
  "liblatdiv_common.a"
  "liblatdiv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latdiv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
