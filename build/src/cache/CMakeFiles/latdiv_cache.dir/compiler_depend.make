# Empty compiler generated dependencies file for latdiv_cache.
# This may be replaced when dependencies are built.
