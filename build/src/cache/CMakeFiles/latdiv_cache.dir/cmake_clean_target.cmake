file(REMOVE_RECURSE
  "liblatdiv_cache.a"
)
