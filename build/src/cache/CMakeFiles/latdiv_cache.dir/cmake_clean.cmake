file(REMOVE_RECURSE
  "CMakeFiles/latdiv_cache.dir/cache.cpp.o"
  "CMakeFiles/latdiv_cache.dir/cache.cpp.o.d"
  "liblatdiv_cache.a"
  "liblatdiv_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latdiv_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
