file(REMOVE_RECURSE
  "CMakeFiles/latdiv_mc.dir/controller.cpp.o"
  "CMakeFiles/latdiv_mc.dir/controller.cpp.o.d"
  "CMakeFiles/latdiv_mc.dir/policy_sbwas.cpp.o"
  "CMakeFiles/latdiv_mc.dir/policy_sbwas.cpp.o.d"
  "liblatdiv_mc.a"
  "liblatdiv_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latdiv_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
