file(REMOVE_RECURSE
  "liblatdiv_mc.a"
)
