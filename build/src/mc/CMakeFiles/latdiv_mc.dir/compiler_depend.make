# Empty compiler generated dependencies file for latdiv_mc.
# This may be replaced when dependencies are built.
