file(REMOVE_RECURSE
  "liblatdiv_core.a"
)
