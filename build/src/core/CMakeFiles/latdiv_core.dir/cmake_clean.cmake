file(REMOVE_RECURSE
  "CMakeFiles/latdiv_core.dir/coordination.cpp.o"
  "CMakeFiles/latdiv_core.dir/coordination.cpp.o.d"
  "CMakeFiles/latdiv_core.dir/ideal.cpp.o"
  "CMakeFiles/latdiv_core.dir/ideal.cpp.o.d"
  "CMakeFiles/latdiv_core.dir/merb.cpp.o"
  "CMakeFiles/latdiv_core.dir/merb.cpp.o.d"
  "CMakeFiles/latdiv_core.dir/policy_wg.cpp.o"
  "CMakeFiles/latdiv_core.dir/policy_wg.cpp.o.d"
  "liblatdiv_core.a"
  "liblatdiv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latdiv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
