# Empty compiler generated dependencies file for latdiv_core.
# This may be replaced when dependencies are built.
