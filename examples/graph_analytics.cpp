// Domain scenario: sizing the memory scheduler for a graph-analytics GPU
// deployment.
//
// A team running BFS/SSSP-style frontier kernels (the paper's motivating
// irregular workloads) wants to know which memory scheduling policy to
// put in their next GPU memory controller, and how sensitive the answer
// is to the graph's degree distribution.  This example defines custom
// workload profiles for three graph classes — road networks (low degree,
// high locality), social networks (power-law, scattered), and synthetic
// RMAT (worst case) — and compares every scheduler the paper evaluates.
//
//   ./examples/graph_analytics [cycles]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/simulator.hpp"

using namespace latdiv;

namespace {

WorkloadProfile graph_profile(const char* name, double mean_degree_lines,
                              double locality_cluster, double frontier_reuse) {
  WorkloadProfile p;
  p.name = name;
  // Frontier expansion: each warp gathers the neighbour lists of 32
  // vertices; the coalesced line count tracks the degree distribution.
  p.divergent_load_frac = 0.6;
  p.divergent_lines_mean = mean_degree_lines;
  p.cluster_len_mean = locality_cluster;   // neighbour-list contiguity
  p.hot_frac = frontier_reuse;             // frontier/visited bitmaps
  p.hot_bytes = 256ULL << 10;
  p.store_frac = 0.15;                     // distance/parent updates
  p.mem_instr_frac = 0.25;
  p.streaming_frac = 0.25;                 // CSR offsets stream
  p.footprint_bytes = 512ULL << 20;        // the graph itself
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const Cycle cycles = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60'000;

  const std::vector<WorkloadProfile> graphs = {
      graph_profile("road-net", 4.0, 3.0, 0.35),
      graph_profile("social-net", 10.0, 1.6, 0.25),
      graph_profile("rmat-27", 14.0, 1.2, 0.15),
  };
  const std::vector<SchedulerKind> scheds = {
      SchedulerKind::kFrFcfs, SchedulerKind::kGmc, SchedulerKind::kSbwas,
      SchedulerKind::kWg,     SchedulerKind::kWgM, SchedulerKind::kWgW,
  };

  std::printf("graph-analytics scheduler study (%llu DRAM cycles/run)\n\n",
              static_cast<unsigned long long>(cycles));
  std::printf("%-12s", "graph");
  for (SchedulerKind s : scheds) std::printf("%10s", to_string(s));
  std::printf("%12s\n", "best");

  for (const WorkloadProfile& g : graphs) {
    std::printf("%-12s", g.name.c_str());
    double best_ipc = 0.0;
    const char* best = "-";
    for (SchedulerKind s : scheds) {
      SimConfig cfg;
      cfg.workload = g;
      cfg.scheduler = s;
      cfg.max_cycles = cycles;
      cfg.warmup_cycles = cycles / 10;
      const RunResult r = Simulator(cfg).run();
      std::printf("%10.2f", r.ipc);
      if (r.ipc > best_ipc) {
        best_ipc = r.ipc;
        best = to_string(s);
      }
    }
    std::printf("%12s\n", best);
  }

  std::printf("\nReading: IPC per scheduler.  Expect the warp-aware family "
              "to lead, with the gap widening as the degree distribution "
              "gets heavier-tailed (more divergent gathers per warp).\n");
  return 0;
}
