// Machine-readable single-run driver: run one (workload, scheduler)
// configuration from the command line and print a single-point
// "latdiv-sweep/1" artifact on stdout — the same schema `latdiv-sweep`
// writes for full sweeps, so downstream scripts parse exactly one
// format.  Useful for scripting parameter sweeps around the library
// without writing C++.
//
//   ./examples/run_json --workload spmv --scheduler WG-W
//       --cycles 100000 --seed 3
//   ./examples/run_json --list          # available workloads/schedulers
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/executor.hpp"
#include "exp/reporter.hpp"
#include "sim/simulator.hpp"

using namespace latdiv;

namespace {

const std::vector<SchedulerKind>& all_schedulers() {
  static const std::vector<SchedulerKind> table = {
      SchedulerKind::kFcfs,  SchedulerKind::kFrFcfs,   SchedulerKind::kGmc,
      SchedulerKind::kWafcfs, SchedulerKind::kSbwas,   SchedulerKind::kWg,
      SchedulerKind::kWgM,   SchedulerKind::kWgBw,     SchedulerKind::kWgW,
      SchedulerKind::kWgShared, SchedulerKind::kZld,
  };
  return table;
}

void list_options() {
  std::printf("workloads:");
  for (const auto& suite : {irregular_suite(), regular_suite()}) {
    for (const WorkloadProfile& w : suite) std::printf(" %s", w.name.c_str());
  }
  std::printf("\nschedulers:");
  for (SchedulerKind kind : all_schedulers()) {
    std::printf(" %s", to_string(kind));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "bfs";
  std::string scheduler = "GMC";
  bool timings = false;
  exp::ExpPoint point;
  point.cycles = 100'000;
  point.warmup = 10'000;

  // Channel shards (parallel core).  Output bytes are contractually
  // identical at any value, so this is safe to default from the env.
  unsigned long shards = 1;
  const auto parse_shards = [&](const char* origin, const char* text) {
    char* end = nullptr;
    shards = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || shards == 0 || shards > 4096) {
      std::fprintf(stderr, "%s: %s wants a shard count >= 1, got '%s'\n",
                   argv[0], origin, text);
      std::exit(2);
    }
  };
  if (const char* env = std::getenv("LATDIV_SHARDS")) {
    parse_shards("LATDIV_SHARDS", env);
  }

  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--list") == 0) {
      list_options();
      return 0;
    } else if (std::strcmp(argv[i], "--workload") == 0) {
      workload = value();
    } else if (std::strcmp(argv[i], "--scheduler") == 0) {
      scheduler = value();
    } else if (std::strcmp(argv[i], "--cycles") == 0) {
      point.cycles = std::strtoull(value(), nullptr, 10);
      point.warmup = point.cycles / 10;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      point.seed = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--ddr3") == 0) {
      point.hook = [](SimConfig& c) { c.dram = ddr3_1600_params(); };
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      parse_shards("--shards", value());
    } else if (std::strcmp(argv[i], "--timings") == 0) {
      timings = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--workload W] [--scheduler S] [--cycles N] "
                   "[--seed N] [--ddr3] [--shards N] [--timings] [--list]\n",
                   argv[0]);
      return 2;
    }
  }
  if (shards != 1) {
    const exp::ConfigHook base = point.hook;
    point.hook = [base, shards](SimConfig& c) {
      if (base) base(c);
      c.shards = static_cast<std::uint32_t>(shards);
    };
  }

  point.workload = profile_by_name(workload);
  bool found = false;
  for (SchedulerKind kind : all_schedulers()) {
    if (scheduler == to_string(kind)) {
      point.scheduler = kind;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown scheduler '%s' (try --list)\n",
                 scheduler.c_str());
    return 2;
  }

  point.row = workload;
  point.col = scheduler;
  point.id = workload + "/" + scheduler + "/s" + std::to_string(point.seed);

  exp::SweepSpec spec;
  spec.name = "run_json";
  spec.title = "single-point run";
  exp::RunShape shape;
  shape.cycles = point.cycles;
  shape.warmup = point.warmup;
  shape.base_seed = point.seed;

  const exp::Artifact artifact =
      exp::make_artifact(spec, shape, {exp::execute_point(point)});
  std::fputs(exp::to_json(artifact, timings).c_str(), stdout);
  return exp::failed_points(artifact) == 0 ? 0 : 1;
}
