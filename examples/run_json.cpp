// Machine-readable single-run driver: run one (workload, scheduler)
// configuration from the command line and print the full RunResult as
// JSON on stdout.  Useful for scripting parameter sweeps around the
// library without writing C++.
//
//   ./examples/run_json --workload spmv --scheduler WG-W
//       --cycles 100000 --seed 3
//   ./examples/run_json --list          # available workloads/schedulers
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

using namespace latdiv;

namespace {

const std::vector<std::pair<std::string, SchedulerKind>>& scheduler_table() {
  static const std::vector<std::pair<std::string, SchedulerKind>> table = {
      {"FCFS", SchedulerKind::kFcfs},     {"FR-FCFS", SchedulerKind::kFrFcfs},
      {"GMC", SchedulerKind::kGmc},       {"WAFCFS", SchedulerKind::kWafcfs},
      {"SBWAS", SchedulerKind::kSbwas},   {"WG", SchedulerKind::kWg},
      {"WG-M", SchedulerKind::kWgM},      {"WG-Bw", SchedulerKind::kWgBw},
      {"WG-W", SchedulerKind::kWgW},      {"WG-Sh", SchedulerKind::kWgShared},
      {"ZLD", SchedulerKind::kZld},
  };
  return table;
}

void list_options() {
  std::printf("workloads:");
  for (const auto& suite : {irregular_suite(), regular_suite()}) {
    for (const WorkloadProfile& w : suite) std::printf(" %s", w.name.c_str());
  }
  std::printf("\nschedulers:");
  for (const auto& [name, kind] : scheduler_table()) {
    std::printf(" %s", name.c_str());
    (void)kind;
  }
  std::printf("\n");
}

void emit(const char* key, double value, bool last = false) {
  std::printf("  \"%s\": %.6g%s\n", key, value, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "bfs";
  std::string scheduler = "GMC";
  SimConfig cfg;
  cfg.max_cycles = 100'000;
  cfg.warmup_cycles = 10'000;

  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--list") == 0) {
      list_options();
      return 0;
    } else if (std::strcmp(argv[i], "--workload") == 0) {
      workload = value();
    } else if (std::strcmp(argv[i], "--scheduler") == 0) {
      scheduler = value();
    } else if (std::strcmp(argv[i], "--cycles") == 0) {
      cfg.max_cycles = std::strtoull(value(), nullptr, 10);
      cfg.warmup_cycles = cfg.max_cycles / 10;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      cfg.seed = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--ddr3") == 0) {
      cfg.dram = ddr3_1600_params();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--workload W] [--scheduler S] [--cycles N] "
                   "[--seed N] [--ddr3] [--list]\n",
                   argv[0]);
      return 2;
    }
  }

  cfg.workload = profile_by_name(workload);
  bool found = false;
  for (const auto& [name, kind] : scheduler_table()) {
    if (name == scheduler) {
      cfg.scheduler = kind;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown scheduler '%s' (try --list)\n",
                 scheduler.c_str());
    return 2;
  }

  const RunResult r = Simulator(cfg).run();
  std::printf("{\n");
  std::printf("  \"workload\": \"%s\",\n", r.workload.c_str());
  std::printf("  \"scheduler\": \"%s\",\n", r.scheduler.c_str());
  emit("ipc", r.ipc);
  emit("instructions", static_cast<double>(r.instructions));
  emit("dram_cycles", static_cast<double>(r.dram_cycles));
  emit("loads", r.loads);
  emit("divergent_load_frac", r.divergent_load_frac);
  emit("requests_per_load", r.requests_per_load);
  emit("effective_mem_latency_ns", r.effective_mem_latency_ns);
  emit("divergence_gap_ns", r.divergence_gap_ns);
  emit("last_to_first_ratio", r.tracker.last_to_first_ratio.mean());
  emit("channels_per_load", r.tracker.channels_per_load.mean());
  emit("banks_per_load", r.tracker.banks_per_load.mean());
  emit("same_row_frac", r.tracker.same_row_frac.mean());
  emit("bandwidth_utilization", r.bandwidth_utilization);
  emit("row_hit_rate", r.row_hit_rate);
  emit("write_intensity", r.write_intensity);
  emit("l1_hit_rate", r.l1_hit_rate);
  emit("l2_hit_rate", r.l2_hit_rate);
  emit("dram_reads", static_cast<double>(r.dram_reads));
  emit("dram_writes", static_cast<double>(r.dram_writes));
  emit("dram_activates", static_cast<double>(r.dram_activates));
  emit("power_total_w", r.power.total());
  emit("power_io_w", r.power.io);
  emit("coord_messages", static_cast<double>(r.coord_messages));
  emit("wg_merb_deferrals", static_cast<double>(r.wg_merb_deferrals), true);
  std::printf("}\n");
  return 0;
}
