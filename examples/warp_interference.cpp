// The paper's key idea (§IV-A, Fig. 5), reproduced on the real controller.
//
// Two warps A and B each issue N requests.  If the controller interleaves
// them, both warps finish near cycle 2N*T and the average stall is
// ~(2N - 1/2)*T.  If warp A's requests are served as a unit first, the
// average drops to ~1.5N*T.  This example builds exactly that scenario —
// two warps, N row-hit requests each, same bank so service serialises —
// and prints the completion times under an interleaving policy (FCFS over
// alternating arrivals) and under warp-group scheduling (WG).
//
//   ./examples/warp_interference [N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "core/policy_wg.hpp"
#include "mc/controller.hpp"
#include "mc/policy_fcfs.hpp"

using namespace latdiv;

namespace {

MemRequest make_req(WarpInstrUid warp, std::uint32_t col) {
  MemRequest r;
  r.kind = ReqKind::kRead;
  r.loc.bank = 0;
  r.loc.row = 1;  // all row hits: pure service-order arithmetic
  r.loc.col = col;
  r.tag.instr = warp;
  r.tag.warp = static_cast<WarpId>(warp);
  return r;
}

struct Outcome {
  Cycle warp_a_done = 0;
  Cycle warp_b_done = 0;
  double avg_stall() const {
    return (static_cast<double>(warp_a_done) +
            static_cast<double>(warp_b_done)) /
           2.0;
  }
};

Outcome run(std::unique_ptr<TransactionScheduler> policy, unsigned n,
            bool interleaved_arrival) {
  DramParams p;
  p.refresh_enabled = false;
  Outcome out;
  std::map<WarpInstrUid, Cycle> last_done;
  unsigned completions = 0;
  MemoryController mc(0, McConfig{}, DramTiming::from(p), std::move(policy),
                      [&](const MemRequest& r, Cycle) {
                        last_done[r.tag.instr] = r.completed;
                        ++completions;
                      });
  // Arrival order models the interconnect: interleaved (A,B,A,B,...) as
  // in the paper's baseline picture, or A's train then B's.
  std::vector<MemRequest> arrivals;
  for (unsigned i = 0; i < n; ++i) {
    arrivals.push_back(make_req(1, i * 2));
    arrivals.push_back(make_req(2, i * 2 + 1));
  }
  if (!interleaved_arrival) {
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const MemRequest& a, const MemRequest& b) {
                       return a.tag.instr < b.tag.instr;
                     });
  }
  for (MemRequest& r : arrivals) mc.push(r, 0);
  mc.notify_group_complete(WarpTag{0, 1, 1}, 0);
  mc.notify_group_complete(WarpTag{0, 2, 2}, 0);
  for (Cycle c = 0; c < 100000 && completions < 2 * n; ++c) mc.tick(c);
  out.warp_a_done = last_done[1];
  out.warp_b_done = last_done[2];
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
  DramParams dp;
  const DramTiming t = DramTiming::from(dp);

  std::printf("Fig. 5 scenario: warps A and B, %u row-hit requests each, "
              "one bank (T = tCCDL = %llu cycles)\n\n",
              n, static_cast<unsigned long long>(t.tccdl));

  const Outcome fcfs =
      run(std::make_unique<FcfsPolicy>(), n, /*interleaved_arrival=*/true);
  WgConfig wg_cfg;
  const Outcome wg = run(std::make_unique<WgPolicy>(wg_cfg, t), n,
                         /*interleaved_arrival=*/true);

  std::printf("%-28s warpA done @%5llu  warpB done @%5llu  avg stall %.0f\n",
              "interleaved (FCFS):",
              static_cast<unsigned long long>(fcfs.warp_a_done),
              static_cast<unsigned long long>(fcfs.warp_b_done),
              fcfs.avg_stall());
  std::printf("%-28s warpA done @%5llu  warpB done @%5llu  avg stall %.0f\n",
              "warp-group (WG):",
              static_cast<unsigned long long>(wg.warp_a_done),
              static_cast<unsigned long long>(wg.warp_b_done),
              wg.avg_stall());

  const double ideal =
      (1.5 * n) / (2.0 * n - 0.5);  // paper's 1.5N*T vs (2N-1/2)*T
  std::printf("\npaper arithmetic: avg stall ratio should approach %.2f "
              "(measured %.2f)\n",
              ideal, wg.avg_stall() / fcfs.avg_stall());
  std::printf("note: the slower warp finishes at the same time under both "
              "policies — the win is entirely in the average.\n");
  return 0;
}
