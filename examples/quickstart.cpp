// Quickstart: simulate one irregular workload (bfs) under the baseline GMC
// scheduler and the paper's best warp-aware scheduler (WG-W), and print the
// headline metrics side by side.
//
//   ./examples/quickstart [workload] [cycles]
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart spmv 200000
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/simulator.hpp"

using namespace latdiv;

namespace {

RunResult run_one(const std::string& workload, SchedulerKind sched,
                  Cycle cycles) {
  SimConfig cfg;
  cfg.workload = profile_by_name(workload);
  cfg.scheduler = sched;
  cfg.max_cycles = cycles;
  cfg.warmup_cycles = cycles / 10;
  Simulator sim(cfg);
  return sim.run();
}

void print(const RunResult& r) {
  std::printf("%-10s IPC=%6.2f  eff-mem-lat=%7.1f ns  div-gap=%6.1f ns  "
              "BW-util=%4.1f%%  row-hit=%4.1f%%  chans/warp=%.2f\n",
              r.scheduler.c_str(), r.ipc, r.effective_mem_latency_ns,
              r.divergence_gap_ns, 100.0 * r.bandwidth_utilization,
              100.0 * r.row_hit_rate, r.tracker.channels_per_load.mean());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "bfs";
  const Cycle cycles = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 150'000;

  std::printf("latdiv quickstart: workload=%s, %llu DRAM cycles\n",
              workload.c_str(), static_cast<unsigned long long>(cycles));

  const RunResult base = run_one(workload, SchedulerKind::kGmc, cycles);
  const RunResult warp = run_one(workload, SchedulerKind::kWgW, cycles);
  print(base);
  print(warp);

  std::printf("WG-W speedup over GMC: %.2f%%\n",
              100.0 * (warp.ipc / base.ipc - 1.0));
  std::printf("coalescing: %.0f loads, %.1f%% divergent, %.2f reqs/load\n",
              base.loads, 100.0 * base.divergent_load_frac,
              base.requests_per_load);
  return 0;
}
