// Extending latdiv with a custom memory scheduling policy.
//
// The paper closes by suggesting schedulers "cognizant of the intricacies
// of the SM cores" beyond WG-W.  This example shows the extension surface
// a downstream researcher would use: implement TransactionScheduler,
// plug it into SimConfig::custom_policy, and compare against the built-in
// policies on the paper's workloads.
//
// The demo policy, "BLP-first", is a deliberately simple contrast to
// BASJF: it always picks the oldest request targeting the bank with the
// fewest queued commands (maximising bank-level parallelism, ignoring
// rows and warps).  It beats FCFS, loses to GMC and WG — and showing
// *that* in three numbers is the point of the example.
//
//   ./examples/custom_policy [workload] [cycles]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "core/policy_wg.hpp"
#include "sim/simulator.hpp"

using namespace latdiv;

namespace {

/// Oldest request to the least-loaded bank; rows and warps ignored.
class BlpFirstPolicy final : public TransactionScheduler {
 public:
  const char* name() const override { return "BLP-first"; }

  void schedule_reads(MemoryController& mc, Cycle now) override {
    auto& rq = mc.read_queue();
    if (rq.empty()) return;
    auto best = rq.end();
    std::size_t best_depth = 0;
    for (auto it = rq.begin(); it != rq.end(); ++it) {
      if (!mc.bank_queue_has_space(it->loc.bank)) continue;
      const std::size_t depth = mc.bank_queue_size(it->loc.bank);
      if (best == rq.end() || depth < best_depth) {
        best = it;  // first (oldest) request per depth class wins
        best_depth = depth;
      }
    }
    if (best == rq.end()) return;
    MemRequest req = *best;
    rq.erase(best);
    mc.send_to_bank(req, now);
  }
};

/// Decorator pattern: wrap a built-in policy to observe or perturb it
/// while keeping its behaviour.  Forwarding wg_stats() keeps the WG
/// counters flowing into RunResult, and forwarding quiescent() keeps the
/// idle fast-forward exact — custom wrappers that hide scheduler state
/// behind the conservative defaults would lose both.
class CountingWrapper final : public TransactionScheduler {
 public:
  explicit CountingWrapper(std::unique_ptr<TransactionScheduler> inner)
      : inner_(std::move(inner)) {}

  const char* name() const override { return inner_->name(); }
  void schedule_reads(MemoryController& mc, Cycle now) override {
    ++schedule_calls_;
    inner_->schedule_reads(mc, now);
  }
  void schedule_writes(MemoryController& mc, Cycle now) override {
    inner_->schedule_writes(mc, now);
  }
  bool wants_interleaved_writes() const override {
    return inner_->wants_interleaved_writes();
  }
  void on_push(MemoryController& mc, const MemRequest& req,
               Cycle now) override {
    inner_->on_push(mc, req, now);
  }
  void on_group_complete(MemoryController& mc, const WarpTag& tag,
                         Cycle now) override {
    inner_->on_group_complete(mc, tag, now);
  }
  void on_remote_selection(MemoryController& mc, const CoordMsg& msg,
                           Cycle now) override {
    inner_->on_remote_selection(mc, msg, now);
  }
  void on_drain_start(MemoryController& mc, Cycle now) override {
    inner_->on_drain_start(mc, now);
  }
  const WgStats* wg_stats() const override { return inner_->wg_stats(); }
  bool quiescent() const override { return inner_->quiescent(); }

  std::uint64_t schedule_calls() const { return schedule_calls_; }

 private:
  std::unique_ptr<TransactionScheduler> inner_;
  std::uint64_t schedule_calls_ = 0;
};

RunResult run(const WorkloadProfile& w, SchedulerKind sched, Cycle cycles,
              bool custom) {
  SimConfig cfg;
  cfg.workload = w;
  cfg.scheduler = sched;
  cfg.max_cycles = cycles;
  cfg.warmup_cycles = cycles / 10;
  if (custom) {
    cfg.custom_policy = [](ChannelId, const DramTiming&) {
      return std::make_unique<BlpFirstPolicy>();
    };
  }
  return Simulator(cfg).run();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "sssp";
  const Cycle cycles = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 60'000;
  const WorkloadProfile w = profile_by_name(workload);

  std::printf("custom-policy demo on %s (%llu cycles)\n\n", workload.c_str(),
              static_cast<unsigned long long>(cycles));
  const RunResult fcfs = run(w, SchedulerKind::kFcfs, cycles, false);
  const RunResult blp = run(w, SchedulerKind::kGmc, cycles, true);
  const RunResult gmc = run(w, SchedulerKind::kGmc, cycles, false);
  const RunResult wgw = run(w, SchedulerKind::kWgW, cycles, false);

  for (const RunResult* r : {&fcfs, &blp, &gmc, &wgw}) {
    std::printf("%-10s IPC=%5.2f  BW-util=%5.1f%%  row-hit=%5.1f%%  "
                "eff-mem-lat=%6.0f ns\n",
                r->scheduler.c_str(), r->ipc,
                100.0 * r->bandwidth_utilization, 100.0 * r->row_hit_rate,
                r->effective_mem_latency_ns);
  }
  std::printf("\nBLP-first vs FCFS: %+.1f%%   (bank parallelism helps)\n",
              100.0 * (blp.ipc / fcfs.ipc - 1.0));
  std::printf("BLP-first vs GMC:  %+.1f%%   (but row locality matters more)\n",
              100.0 * (blp.ipc / gmc.ipc - 1.0));
  std::printf("WG-W vs GMC:       %+.1f%%   (and warp-awareness most of all)\n",
              100.0 * (wgw.ipc / gmc.ipc - 1.0));

  // Wrapped built-in: WG-W behind a forwarding decorator.  Because the
  // wrapper forwards wg_stats(), the simulator's collect() still sees the
  // warp-group counters through the virtual hook — no downcasts anywhere.
  SimConfig wrapped_cfg;
  wrapped_cfg.workload = w;
  wrapped_cfg.scheduler = SchedulerKind::kWgW;
  wrapped_cfg.max_cycles = cycles;
  wrapped_cfg.warmup_cycles = cycles / 10;
  WgConfig wg_cfg;
  wg_cfg.multi_channel = true;
  wg_cfg.merb = true;
  wg_cfg.write_aware = true;
  wrapped_cfg.custom_policy = [&wg_cfg](ChannelId, const DramTiming& t) {
    return std::make_unique<CountingWrapper>(
        std::make_unique<WgPolicy>(wg_cfg, t));
  };
  const RunResult wrapped = Simulator(wrapped_cfg).run();
  std::printf("\nwrapped WG-W (CountingWrapper): IPC=%.2f, "
              "%llu warp-groups selected — identical to the built-in "
              "(%llu), stats flow through wg_stats()\n",
              wrapped.ipc,
              static_cast<unsigned long long>(wrapped.wg_groups_selected),
              static_cast<unsigned long long>(wgw.wg_groups_selected));
  return 0;
}
